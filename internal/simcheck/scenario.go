// Package simcheck is a deterministic, seed-driven property-based test
// harness for the RTOS model: it generates random task sets (periodic and
// aperiodic tasks, random priorities, periods and execution segments,
// random IRQ release patterns and random channel topologies), runs each
// set through the scheduler across the full configuration matrix (every
// scheduling policy × coarse/segmented time model × single-PE and SMP),
// and checks structural scheduling invariants plus differential oracles
// on the resulting traces:
//
//   - at most one task occupies a CPU at any instant (per PE / per SMP
//     slot), with timestamps monotone and IRQ enter/return balanced;
//   - under fixed-priority preemptive policies a ready higher-priority
//     task never waits across a time step while a lower-priority task
//     runs, except for the coarse time model's delay-granularity window
//     (paper Section 4.3, Figure 8's t4 → t4');
//   - busy + idle (+ context-switch overhead) time exactly partitions the
//     simulated span (core.OS.CheckConservation);
//   - coarse and segmented time models agree on total busy time, per-task
//     CPU time, activation counts and completion sets once all work has
//     drained;
//   - observed response times of schedulable periodic tasks respect an
//     independently computed response-time-analysis (RTA) upper bound;
//   - the same seed replays to a byte-identical trace (the determinism
//     property any future parallel-kernel work must preserve).
//
// Failing scenarios shrink to minimal reproducers (cmd/simfuzz writes
// them to testdata/simcheck/).
package simcheck

import (
	"encoding/json"
	"fmt"

	"repro/internal/sim"
)

// Op kinds of an aperiodic task program.
const (
	OpDelay   = "delay"   // modeled execution time (TimeWait)
	OpSend    = "send"    // blocking send on a queue channel
	OpRecv    = "recv"    // blocking receive on a queue channel
	OpAcquire = "acquire" // semaphore acquire (released by IRQs or initial count)
)

// Op is one statement of an aperiodic task's program.
type Op struct {
	Kind string   `json:"kind"`
	Dur  sim.Time `json:"dur,omitempty"` // OpDelay
	Ch   string   `json:"ch,omitempty"`  // channel-using ops
}

// TaskSpec describes one task of a scenario. Periodic tasks are pure
// compute (their per-cycle work is Segments, repeated Cycles times);
// aperiodic tasks run a program of delay and channel operations once.
type TaskSpec struct {
	Name     string     `json:"name"`
	Type     string     `json:"type"` // "periodic" or "aperiodic"
	Prio     int        `json:"prio"`
	Period   sim.Time   `json:"period,omitempty"`
	Cycles   int        `json:"cycles,omitempty"`
	Segments []sim.Time `json:"segments,omitempty"`
	Start    sim.Time   `json:"start,omitempty"` // aperiodic activation offset
	Ops      []Op       `json:"ops,omitempty"`
}

// Work returns the task's total modeled execution time.
func (t *TaskSpec) Work() sim.Time {
	var w sim.Time
	if t.Type == "periodic" {
		for _, s := range t.Segments {
			w += s
		}
		return w * sim.Time(t.Cycles)
	}
	for _, op := range t.Ops {
		if op.Kind == OpDelay {
			w += op.Dur
		}
	}
	return w
}

// ChannelSpec declares a channel of the scenario's topology.
type ChannelSpec struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "queue" or "semaphore"
	Arg  int    `json:"arg"`  // queue capacity / semaphore initial count
}

// IRQSpec is an external interrupt source releasing a semaphore Count
// times starting at At, spaced Every apart (the paper's bus-driver ISR
// pattern).
type IRQSpec struct {
	Name  string   `json:"name"`
	Sem   string   `json:"sem"`
	At    sim.Time `json:"at"`
	Every sim.Time `json:"every,omitempty"`
	Count int      `json:"count"`
}

// Scenario is one generated (or shrunk) task set. It is the unit the
// harness runs across the configuration matrix, and the JSON reproducer
// format cmd/simfuzz writes to testdata/simcheck/.
type Scenario struct {
	Seed     int64         `json:"seed"`
	Tasks    []TaskSpec    `json:"tasks"`
	Channels []ChannelSpec `json:"channels,omitempty"`
	IRQs     []IRQSpec     `json:"irqs,omitempty"`
}

// ChannelFree reports whether the scenario uses no channels or IRQs (the
// subset the SMP scheduler's service surface supports).
func (s *Scenario) ChannelFree() bool {
	return len(s.Channels) == 0 && len(s.IRQs) == 0
}

// AllPeriodic reports whether every task is periodic.
func (s *Scenario) AllPeriodic() bool {
	for i := range s.Tasks {
		if s.Tasks[i].Type != "periodic" {
			return false
		}
	}
	return true
}

// Horizon returns a simulation end time by which every interleaving of
// the scenario must have drained: all periodic release windows, all
// start/IRQ offsets, plus twice the total work as scheduling slack. The
// bound is intentionally loose — simulation cost is driven by event
// count, not by the horizon.
func (s *Scenario) Horizon() sim.Time {
	var horizon sim.Time = sim.Millisecond
	var work sim.Time
	for i := range s.Tasks {
		t := &s.Tasks[i]
		work += t.Work()
		if t.Type == "periodic" {
			horizon += t.Period * sim.Time(t.Cycles+1)
		} else {
			horizon += t.Start
		}
	}
	for _, irq := range s.IRQs {
		horizon += irq.At + irq.Every*sim.Time(irq.Count)
	}
	return horizon + 2*work
}

// Validate checks the scenario for structural soundness. A valid scenario
// is deadlock-free by construction: queue capacities cover all sends (so
// sends never block), every queue flows from exactly one producer to
// exactly one later-indexed consumer (so blocking receives wait only on
// tasks that make independent progress), and semaphore releases (initial
// count plus IRQ releases, which fire on timers regardless of task
// state) cover all acquires.
func (s *Scenario) Validate() error {
	if len(s.Tasks) == 0 {
		return fmt.Errorf("simcheck: no tasks")
	}
	names := map[string]int{}
	for i := range s.Tasks {
		t := &s.Tasks[i]
		if t.Name == "" {
			return fmt.Errorf("simcheck: task %d unnamed", i)
		}
		if _, dup := names[t.Name]; dup {
			return fmt.Errorf("simcheck: duplicate task %q", t.Name)
		}
		names[t.Name] = i
		switch t.Type {
		case "periodic":
			if t.Period <= 0 || t.Cycles <= 0 || len(t.Segments) == 0 {
				return fmt.Errorf("simcheck: periodic task %q needs period, cycles and segments", t.Name)
			}
			for _, seg := range t.Segments {
				if seg <= 0 {
					return fmt.Errorf("simcheck: task %q has non-positive segment", t.Name)
				}
			}
			if len(t.Ops) > 0 {
				return fmt.Errorf("simcheck: periodic task %q must not use channel ops", t.Name)
			}
		case "aperiodic":
			if t.Start < 0 {
				return fmt.Errorf("simcheck: task %q has negative start", t.Name)
			}
			if len(t.Ops) == 0 {
				return fmt.Errorf("simcheck: aperiodic task %q has no ops", t.Name)
			}
		default:
			return fmt.Errorf("simcheck: task %q has unknown type %q", t.Name, t.Type)
		}
	}
	chans := map[string]*ChannelSpec{}
	for i := range s.Channels {
		c := &s.Channels[i]
		if c.Kind != "queue" && c.Kind != "semaphore" {
			return fmt.Errorf("simcheck: channel %q has unknown kind %q", c.Name, c.Kind)
		}
		if _, dup := chans[c.Name]; dup {
			return fmt.Errorf("simcheck: duplicate channel %q", c.Name)
		}
		if c.Arg < 0 {
			return fmt.Errorf("simcheck: channel %q has negative arg", c.Name)
		}
		chans[c.Name] = c
	}
	type usage struct {
		sends, recvs, acquires int
		sender, receiver       int // task indices, -1 if none yet
	}
	use := map[string]*usage{}
	for name := range chans {
		use[name] = &usage{sender: -1, receiver: -1}
	}
	for i := range s.Tasks {
		t := &s.Tasks[i]
		for _, op := range t.Ops {
			switch op.Kind {
			case OpDelay:
				if op.Dur < 0 {
					return fmt.Errorf("simcheck: task %q has negative delay", t.Name)
				}
			case OpSend, OpRecv, OpAcquire:
				c, ok := chans[op.Ch]
				if !ok {
					return fmt.Errorf("simcheck: task %q uses undeclared channel %q", t.Name, op.Ch)
				}
				u := use[op.Ch]
				switch op.Kind {
				case OpSend, OpRecv:
					if c.Kind != "queue" {
						return fmt.Errorf("simcheck: task %q %ss on non-queue %q", t.Name, op.Kind, op.Ch)
					}
					if op.Kind == OpSend {
						if u.sender >= 0 && u.sender != i {
							return fmt.Errorf("simcheck: queue %q has multiple producers", op.Ch)
						}
						u.sender = i
						u.sends++
					} else {
						if u.receiver >= 0 && u.receiver != i {
							return fmt.Errorf("simcheck: queue %q has multiple consumers", op.Ch)
						}
						u.receiver = i
						u.recvs++
					}
				case OpAcquire:
					if c.Kind != "semaphore" {
						return fmt.Errorf("simcheck: task %q acquires non-semaphore %q", t.Name, op.Ch)
					}
					u.acquires++
				}
			default:
				return fmt.Errorf("simcheck: task %q has unknown op %q", t.Name, op.Kind)
			}
		}
	}
	released := map[string]int{}
	for _, irq := range s.IRQs {
		c, ok := chans[irq.Sem]
		if !ok || c.Kind != "semaphore" {
			return fmt.Errorf("simcheck: irq %q releases non-semaphore %q", irq.Name, irq.Sem)
		}
		if irq.Count <= 0 || irq.At < 0 {
			return fmt.Errorf("simcheck: irq %q needs positive count and non-negative time", irq.Name)
		}
		if irq.Count > 1 && irq.Every <= 0 {
			return fmt.Errorf("simcheck: repeating irq %q needs positive spacing", irq.Name)
		}
		released[irq.Sem] += irq.Count
	}
	for name, c := range chans {
		u := use[name]
		switch c.Kind {
		case "queue":
			if u.sends != u.recvs {
				return fmt.Errorf("simcheck: queue %q has %d sends but %d recvs", name, u.sends, u.recvs)
			}
			if u.sends > 0 && u.sender >= u.receiver {
				return fmt.Errorf("simcheck: queue %q must flow from a lower- to a higher-indexed task", name)
			}
			if c.Arg < u.sends {
				return fmt.Errorf("simcheck: queue %q capacity %d < %d sends (sends could block)", name, c.Arg, u.sends)
			}
		case "semaphore":
			if c.Arg+released[name] < u.acquires {
				return fmt.Errorf("simcheck: semaphore %q has %d acquires but only %d releases",
					name, u.acquires, c.Arg+released[name])
			}
		}
	}
	return nil
}

// MarshalIndent renders the scenario as indented JSON (the reproducer
// format).
func (s *Scenario) MarshalIndent() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic(err) // plain data: cannot fail
	}
	return append(b, '\n')
}

// ParseScenario decodes and validates a JSON scenario.
func ParseScenario(data []byte) (*Scenario, error) {
	var s Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("simcheck: %v", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
