package simcheck

import (
	"bytes"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// TestGenerateDeterministic: the same seed must yield the same scenario
// in every process — the replay contract the reproduction instructions
// rely on.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		a := Generate(seed).MarshalIndent()
		b := Generate(seed).MarshalIndent()
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d generated two different scenarios:\n%s\nvs\n%s", seed, a, b)
		}
	}
}

// TestScenarioRoundTrip: the JSON reproducer format must round-trip.
func TestScenarioRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		s := Generate(seed)
		got, err := ParseScenario(s.MarshalIndent())
		if err != nil {
			t.Fatalf("seed %d does not round-trip: %v", seed, err)
		}
		if !bytes.Equal(got.MarshalIndent(), s.MarshalIndent()) {
			t.Fatalf("seed %d round-trips to a different scenario", seed)
		}
	}
}

// TestMatrixInvariants is the harness entry point: it generates task
// sets and checks every invariant and oracle across the full
// policy × time-model × PE-count matrix (each config run twice for the
// determinism oracle).
func TestMatrixInvariants(t *testing.T) {
	n := int64(200)
	if testing.Short() {
		n = 25
	}
	runs, failures := 0, 0
	for seed := int64(1); seed <= n; seed++ {
		s := Generate(seed)
		runs += len(Matrix(s))
		for _, f := range Check(s) {
			failures++
			t.Errorf("seed %d: %s\nscenario:\n%s", seed, f, s.MarshalIndent())
			if failures >= 5 {
				t.Fatalf("stopping after %d failing scenarios", failures)
			}
		}
	}
	t.Logf("checked %d scenarios, %d matrix runs (each doubled for determinism)", n, runs)
	if !testing.Short() && runs < 200 {
		t.Errorf("matrix coverage too small: %d runs", runs)
	}
}

// TestKnownSchedulableScenario pins the RTA oracle on a hand-built set
// whose response times are easy to verify by hand:
//
//	T0: C=10us T=100us prio 0  ->  R0 = 10us
//	T1: C=20us T=200us prio 1  ->  R1 = 20 + ceil(R1/100)*10 = 30us
func TestKnownSchedulableScenario(t *testing.T) {
	s := &Scenario{
		Seed: -1,
		Tasks: []TaskSpec{
			{Name: "T0", Type: "periodic", Prio: 0, Period: 100 * sim.Microsecond,
				Cycles: 3, Segments: []sim.Time{10 * sim.Microsecond}},
			{Name: "T1", Type: "periodic", Prio: 1, Period: 200 * sim.Microsecond,
				Cycles: 2, Segments: []sim.Time{20 * sim.Microsecond}},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, f := range Check(s) {
		t.Errorf("%s", f)
	}
	res := Run(s, Config{Policy: "priority", TimeModel: "segmented", CPUs: 1})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := res.Tasks[0].MaxResp; got != 10*sim.Microsecond {
		t.Errorf("T0 max response = %v, want 10us", got)
	}
	if got := res.Tasks[1].MaxResp; got != 30*sim.Microsecond {
		t.Errorf("T1 max response = %v, want 30us (preempted once by T0)", got)
	}
}

// TestCheckerFlagsDoctoredTraces proves the invariant checker is not
// vacuous: hand-written record streams with planted violations must be
// caught, and the coarse model's legal delay-granularity window must not.
func TestCheckerFlagsDoctoredTraces(t *testing.T) {
	s := &Scenario{
		Tasks: []TaskSpec{
			{Name: "T0", Type: "periodic", Prio: 0, Period: 100 * sim.Microsecond,
				Cycles: 1, Segments: []sim.Time{sim.Microsecond}},
			{Name: "T1", Type: "periodic", Prio: 1, Period: 100 * sim.Microsecond,
				Cycles: 1, Segments: []sim.Time{sim.Microsecond}},
		},
	}
	segmented := Config{Policy: "priority", TimeModel: "segmented", CPUs: 1}
	coarse := Config{Policy: "priority", TimeModel: "coarse", CPUs: 1}
	state := func(at sim.Time, task, to string) trace.Record {
		return trace.Record{At: at, Kind: trace.KindTaskState, Task: task, To: to}
	}
	marker := func(at sim.Time) trace.Record {
		return trace.Record{At: at, Kind: trace.KindMarker, Label: "end"}
	}
	cases := []struct {
		name    string
		cfg     Config
		records []trace.Record
		want    string // violation kind, "" for clean
	}{
		{"inversion across time step", segmented, []trace.Record{
			state(0, "T1", "running"),
			state(0, "T0", "ready"),
			marker(100 * sim.Microsecond),
		}, "priority-inversion"},
		{"coarse delay window is legal", coarse, []trace.Record{
			state(0, "T1", "delay"),
			state(5*sim.Microsecond, "T0", "ready"),
			marker(100 * sim.Microsecond),
		}, ""},
		{"segmented must preempt the delay", segmented, []trace.Record{
			state(0, "T1", "delay"),
			state(5*sim.Microsecond, "T0", "ready"),
			marker(100 * sim.Microsecond),
		}, "priority-inversion"},
		{"delay that predates readiness but outlives it is flagged when re-entered", coarse, []trace.Record{
			state(0, "T0", "ready"),
			state(5*sim.Microsecond, "T1", "delay"),
			marker(100 * sim.Microsecond),
		}, "priority-inversion"},
		{"two tasks on one PE", segmented, []trace.Record{
			state(0, "T0", "running"),
			state(0, "T1", "running"),
		}, "single-running"},
		{"unbalanced irq", segmented, []trace.Record{
			{At: 0, Kind: trace.KindIRQ, Label: "irq0", Arg: 1},
		}, "irq-balance"},
		{"time going backwards", segmented, []trace.Record{
			marker(10 * sim.Microsecond),
			marker(5 * sim.Microsecond),
		}, "monotone-time"},
	}
	for _, tc := range cases {
		res := &RunResult{Config: tc.cfg, Records: tc.records}
		vs := checkSingleTrace(s, res)
		if tc.want == "" {
			if len(vs) != 0 {
				t.Errorf("%s: unexpected violations %v", tc.name, vs)
			}
			continue
		}
		found := false
		for _, v := range vs {
			if v.Kind == tc.want {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: wanted a %q violation, got %v", tc.name, tc.want, vs)
		}
	}
}

// TestShrinkReduces: with an always-true predicate the shrinker must
// drive any scenario down to a single minimal task while keeping every
// intermediate candidate valid.
func TestShrinkReduces(t *testing.T) {
	s := Generate(3)
	small := Shrink(s, func(c *Scenario) bool {
		if err := c.Validate(); err != nil {
			t.Fatalf("shrinker proposed invalid candidate: %v", err)
		}
		return true
	}, 500)
	if len(small.Tasks) != 1 {
		t.Fatalf("shrunk to %d tasks, want 1:\n%s", len(small.Tasks), small.MarshalIndent())
	}
	tk := &small.Tasks[0]
	switch tk.Type {
	case "periodic":
		if tk.Cycles != 1 || len(tk.Segments) != 1 || tk.Segments[0] != sim.Microsecond {
			t.Errorf("periodic task not minimal:\n%s", small.MarshalIndent())
		}
	case "aperiodic":
		if len(tk.Ops) != 1 || tk.Ops[0].Dur > sim.Microsecond {
			t.Errorf("aperiodic task not minimal:\n%s", small.MarshalIndent())
		}
	}
}

// TestShrinkPreservesTargetedFailure: shrinking against a predicate that
// needs a specific structural feature must keep that feature.
func TestShrinkPreservesTargetedFailure(t *testing.T) {
	var s *Scenario
	for seed := int64(1); seed <= 200; seed++ {
		c := Generate(seed)
		if len(c.IRQs) > 0 {
			s = c
			break
		}
	}
	if s == nil {
		t.Fatal("no generated scenario with an IRQ in 200 seeds")
	}
	hasIRQ := func(c *Scenario) bool { return len(c.IRQs) > 0 }
	small := Shrink(s, hasIRQ, 500)
	if !hasIRQ(small) {
		t.Fatalf("shrinking lost the failing feature:\n%s", small.MarshalIndent())
	}
	if len(small.Tasks) >= len(s.Tasks) && len(s.Tasks) > 1 {
		t.Errorf("shrinker made no progress: %d tasks before, %d after", len(s.Tasks), len(small.Tasks))
	}
}

// TestWatchdogPeriodBoundaryNoFalsePositive replays the shrunk soak
// reproducer of seed 12164: task T2's second period wake lands exactly on
// a watchdog check instant (918 µs = 3 × the 306 µs window) with no
// dispatch in the preceding window, so a single-sample watchdog saw
// "ready task, no progress" and misdiagnosed starvation on every policy
// under the segmented model. The watchdog now confirms starvation over a
// second window; this scenario must check clean across the whole matrix.
func TestWatchdogPeriodBoundaryNoFalsePositive(t *testing.T) {
	s, err := ParseScenario([]byte(`{
		"seed": 12164,
		"tasks": [
			{"name": "T0", "type": "aperiodic", "prio": 1,
			 "ops": [{"kind": "delay", "dur": 19000}]},
			{"name": "T1", "type": "periodic", "prio": 2, "period": 1000,
			 "cycles": 1, "segments": [15000, 13000, 17000]},
			{"name": "T2", "type": "periodic", "prio": 0, "period": 459000,
			 "cycles": 2, "segments": [12000, 11000, 9000]}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Check(s) {
		t.Errorf("%v", f)
	}
}
