package simcheck

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

// TestCheckpointEquivalence is the dedicated checkpoint-equivalence
// suite: for a corpus of generated scenarios, snapshot at 25/50/75% of
// the horizon on every uniprocessor config of the matrix — both engines
// — and require the restored run byte-identical (trace, stats, task
// outcomes) to the uninterrupted run.
func TestCheckpointEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		s := Generate(seed)
		for _, cfg := range Matrix(s) {
			if cfg.CPUs != 1 {
				continue
			}
			for _, engine := range []string{"", "rtc"} {
				base := cfg
				base.Engine = engine
				want := safeRun(s, base)
				for _, num := range []sim.Time{1, 2, 3} {
					ck := base
					ck.CheckpointAt = s.Horizon() * num / 4
					if ck.CheckpointAt == 0 {
						ck.CheckpointAt = 1
					}
					got := safeRun(s, ck)
					if (got.Err == nil) != (want.Err == nil) {
						t.Errorf("seed %d %s: err %v, uninterrupted err %v", seed, ck, got.Err, want.Err)
						continue
					}
					if !bytes.Equal(got.Trace, want.Trace) {
						t.Errorf("seed %d %s: restored trace diverges from uninterrupted run (%d vs %d bytes)",
							seed, ck, len(got.Trace), len(want.Trace))
					}
				}
			}
		}
	}
}

// TestCheckpointInstantDeterministic pins the oracle's snapshot-point
// derivation: same seed and config always map to the same instant,
// inside (0, horizon].
func TestCheckpointInstantDeterministic(t *testing.T) {
	cfg := Config{Policy: "priority", TimeModel: "coarse", CPUs: 1}
	h := 10 * sim.Millisecond
	a := CheckpointInstant(42, cfg, h)
	b := CheckpointInstant(42, cfg, h)
	if a != b {
		t.Fatalf("CheckpointInstant not deterministic: %v vs %v", a, b)
	}
	if a < 1 || a > h {
		t.Fatalf("CheckpointInstant %v outside (0, %v]", a, h)
	}
	other := CheckpointInstant(43, cfg, h)
	cfg2 := cfg
	cfg2.Policy = "edf"
	if a == other && a == CheckpointInstant(42, cfg2, h) {
		t.Fatalf("CheckpointInstant ignores seed and config")
	}
}

// TestCheckpointRejectsSMP: the SMP model has no checkpoint support and
// must say so rather than silently ignore the axis.
func TestCheckpointRejectsSMP(t *testing.T) {
	s := Generate(7)
	res := Run(s, Config{Policy: "g-fp", TimeModel: "coarse", CPUs: 2, CheckpointAt: sim.Millisecond})
	if res.Err == nil {
		t.Fatal("CheckpointAt with CPUs=2 accepted")
	}
}
