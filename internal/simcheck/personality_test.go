package simcheck

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/personality"
	"repro/internal/runner"
)

var updateCorpus = flag.Bool("update", false, "rewrite the cross-personality corpus from its seeds")

// crossSeeds are the seeds of the committed cross-personality corpus in
// testdata/simcheck/: every one generates a scenario with both a queue
// topology and a semaphore, so the itron and osek personalities take
// their native grant paths (mailbox FIFO handoff, OSEK-COM queued
// messages) rather than the degenerate channel-free passthrough.
var crossSeeds = []int64{5, 10, 12, 18, 23, 30, 33, 40, 53, 71, 90}

func crossPath(seed int64) string {
	return filepath.Join("..", "..", "testdata", "simcheck", fmt.Sprintf("cross_seed%d.json", seed))
}

// TestPersonalityMatrix pins the shape of the configuration matrix: every
// uniprocessor policy runs under both time models and all three
// personalities, and the SMP rows stay personality-free (the smp package
// has its own service surface).
func TestPersonalityMatrix(t *testing.T) {
	s := Generate(5) // has channels: no SMP rows
	count := map[string]int{}
	for _, cfg := range Matrix(s) {
		if cfg.CPUs != 1 {
			t.Errorf("channel-bearing scenario got SMP config %s", cfg)
			continue
		}
		count[cfg.Personality]++
	}
	for _, pers := range []string{"", personality.ITRON, personality.OSEK} {
		if count[pers] != 10 { // 5 policies x 2 time models
			t.Errorf("personality %q has %d matrix rows, want 10", pers, count[pers])
		}
	}
	for _, cfg := range Matrix(Generate(1)) { // periodic-only: SMP eligible
		if cfg.CPUs > 1 && cfg.Personality != "" {
			t.Errorf("SMP config %s carries a personality", cfg)
		}
	}
}

// tracesByConfig runs the scenario's full matrix with the given worker
// count and returns each config's canonical trace bytes.
func tracesByConfig(s *Scenario, jobs int) map[string][]byte {
	cfgs := Matrix(s)
	runs := runner.Map(len(cfgs), runner.Options{Jobs: jobs}, func(i int) (*RunResult, error) {
		return safeRun(s, cfgs[i]), nil
	})
	out := make(map[string][]byte, len(cfgs))
	for i, cfg := range cfgs {
		out[cfg.String()] = runs[i].Value.Trace
	}
	return out
}

// TestCrossPersonalityCorpus replays the committed corpus: each scenario
// must (a) round-trip its seed (generation is a pure function of the
// seed, so the file is self-checking), (b) pass the full invariant and
// oracle matrix — including the cross-personality differential oracle —
// and (c) produce byte-identical traces whether the matrix runs on one
// worker or eight, which is the determinism contract cmd/simfuzz -jobs
// relies on (run under -race, this also shakes out data races between
// concurrent matrix points).
func TestCrossPersonalityCorpus(t *testing.T) {
	for _, seed := range crossSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			s := Generate(seed)
			if len(s.Channels) < 2 {
				t.Fatalf("seed %d has %d channels; corpus seeds must exercise queues and semaphores", seed, len(s.Channels))
			}
			want := s.MarshalIndent()
			path := crossPath(seed)
			if *updateCorpus {
				if err := os.WriteFile(path, want, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate the corpus)", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s does not match Generate(%d); run with -update", path, seed)
			}
			loaded, err := ParseScenario(got)
			if err != nil {
				t.Fatal(err)
			}

			if fails := CheckJobs(loaded, 8); len(fails) > 0 {
				for _, f := range fails {
					t.Errorf("%v", f)
				}
			}
			seq := tracesByConfig(loaded, 1)
			par := tracesByConfig(loaded, 8)
			for key, a := range seq {
				if b := par[key]; !bytes.Equal(a, b) {
					t.Errorf("config %s: trace differs between -jobs 1 and -jobs 8\n%s",
						key, firstTraceDiff(a, b))
				}
			}
		})
	}
	if len(crossSeeds) < 10 {
		t.Errorf("cross-personality corpus has %d scenarios, want >= 10", len(crossSeeds))
	}
}
