// Package readyq implements the policy-indexed ready structure shared by
// the uniprocessor RTOS model (internal/core) and the SMP extension
// (internal/smp).
//
// Real RTOS kernels do not scan their ready list on every dispatch: they
// index it (µC/OS's priority bitmap, VxWorks' priority-bucketed FIFO
// queues). This package provides the same shape for the RTOS *model*, so
// that the simulation hot path — dispatch, preemption checks, ready-queue
// maintenance — costs O(1) for the common case and O(log n) worst case
// instead of O(n) per decision:
//
//   - tasks are grouped into buckets by a two-component rank Key (the
//     policy's static ordering: priority, deadline, ...);
//   - buckets are kept in a small sorted array (binary search; the bucket
//     count is the number of *distinct* ranks currently ready, typically
//     far below the task count);
//   - within a bucket, tasks chain through intrusive FIFO links embedded
//     in the task struct, ordered by their ready-queue sequence number —
//     exactly the dispatcher's FIFO tie-break.
//
// The structure is allocation-free in steady state: emptied buckets are
// recycled on a free list and the intrusive links live inside the tasks.
//
// Equivalence contract: for a policy whose Less ordering matches the
// lexicographic order of its Rank keys, Min() returns exactly the task a
// linear scan with FIFO tie-break would pick. The property test in this
// package and the byte-equivalence suite at the repository root pin that
// contract across the full policy × time-model matrix.
package readyq

// Key is a policy rank: two lexicographically ordered components. Smaller
// runs first. Fixed-priority policies use {priority, 0}; EDF uses
// {deadline, priority}; FCFS uses {0, 0} (pure FIFO).
type Key struct{ A, B int64 }

// Less reports whether k orders strictly before o.
func (k Key) Less(o Key) bool {
	if k.A != o.A {
		return k.A < o.A
	}
	return k.B < o.B
}

// Links is the intrusive node state a task embeds to participate in a
// Queue. The zero value is an unqueued node.
type Links[T comparable] struct {
	next, prev T
	seq        int
	b          *bucket[T]
}

// Queued reports whether the owning task is currently in a queue.
func (l *Links[T]) Queued() bool { return l.b != nil }

// bucket is one rank level: a FIFO list of tasks sharing a Key.
type bucket[T comparable] struct {
	key        Key
	head, tail T
	n          int
}

// Queue is a priority-bucketed ready queue over tasks of type T. The
// links accessor returns the task's embedded Links; it must be a pure
// field access.
type Queue[T comparable] struct {
	links   func(T) *Links[T]
	buckets []*bucket[T] // sorted ascending by key, all non-empty
	free    []*bucket[T]
	size    int
}

// New returns an empty queue using the given intrusive-links accessor.
func New[T comparable](links func(T) *Links[T]) *Queue[T] {
	return &Queue[T]{links: links}
}

// Len returns the number of queued tasks.
func (q *Queue[T]) Len() int { return q.size }

// find returns the index of the bucket with the given key, or the
// insertion position when absent.
func (q *Queue[T]) find(key Key) (int, bool) {
	lo, hi := 0, len(q.buckets)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		bk := q.buckets[mid].key
		switch {
		case bk.Less(key):
			lo = mid + 1
		case key.Less(bk):
			hi = mid
		default:
			return mid, true
		}
	}
	return lo, false
}

// Push inserts t with the given rank key and ready sequence number. Tasks
// within one rank are ordered by ascending seq (the FIFO tie-break), so a
// re-keyed task that keeps its original seq re-enters exactly where the
// linear-scan dispatcher would have found it. Push panics if t is already
// queued.
func (q *Queue[T]) Push(t T, key Key, seq int) {
	l := q.links(t)
	if l.b != nil {
		panic("readyq: Push of an already queued task")
	}
	i, ok := q.find(key)
	var b *bucket[T]
	if ok {
		b = q.buckets[i]
	} else {
		if n := len(q.free); n > 0 {
			b = q.free[n-1]
			q.free[n-1] = nil
			q.free = q.free[:n-1]
		} else {
			b = new(bucket[T])
		}
		b.key = key
		q.buckets = append(q.buckets, nil)
		copy(q.buckets[i+1:], q.buckets[i:])
		q.buckets[i] = b
	}
	var zero T
	l.seq = seq
	l.b = b
	l.next, l.prev = zero, zero
	if b.n == 0 {
		b.head, b.tail = t, t
		b.n = 1
		q.size++
		return
	}
	// Splice in seq order, scanning from the tail: normal arrivals carry
	// the highest seq so far and append in O(1); only re-keyed tasks
	// (priority/deadline changed while ready) walk further.
	after := b.tail
	for after != zero && q.links(after).seq > seq {
		after = q.links(after).prev
	}
	if after == zero {
		l.next = b.head
		q.links(b.head).prev = t
		b.head = t
	} else {
		nxt := q.links(after).next
		l.prev = after
		l.next = nxt
		q.links(after).next = t
		if nxt == zero {
			b.tail = t
		} else {
			q.links(nxt).prev = t
		}
	}
	b.n++
	q.size++
}

// PushFront inserts t at the head of its rank's FIFO in O(1): the
// re-insertion an OSEK-conformant dispatcher performs for a preempted
// task, which re-enters its priority level as the *oldest* ready task
// (OSEK OS 2.2.3 §4.6.5), not the newest. The caller must supply a seq
// that orders at or before the bucket's current head (the OS keeps a
// separate decrementing front counter), preserving the ascending-seq
// chain invariant Push and Update rely on; PushFront panics otherwise.
func (q *Queue[T]) PushFront(t T, key Key, seq int) {
	l := q.links(t)
	if l.b != nil {
		panic("readyq: PushFront of an already queued task")
	}
	i, ok := q.find(key)
	if !ok {
		// Empty rank: indistinguishable from a plain push.
		q.Push(t, key, seq)
		return
	}
	b := q.buckets[i]
	if q.links(b.head).seq < seq {
		panic("readyq: PushFront seq would not order first in its rank")
	}
	var zero T
	l.seq = seq
	l.b = b
	l.prev = zero
	l.next = b.head
	q.links(b.head).prev = t
	b.head = t
	b.n++
	q.size++
}

// Remove unlinks t and reports whether it was queued.
func (q *Queue[T]) Remove(t T) bool {
	l := q.links(t)
	b := l.b
	if b == nil {
		return false
	}
	var zero T
	if l.prev == zero {
		b.head = l.next
	} else {
		q.links(l.prev).next = l.next
	}
	if l.next == zero {
		b.tail = l.prev
	} else {
		q.links(l.next).prev = l.prev
	}
	l.next, l.prev, l.b = zero, zero, nil
	b.n--
	q.size--
	if b.n == 0 {
		q.dropBucket(b)
	}
	return true
}

// dropBucket removes an emptied bucket from the sorted array and recycles
// it.
func (q *Queue[T]) dropBucket(b *bucket[T]) {
	i, ok := q.find(b.key)
	if !ok || q.buckets[i] != b {
		panic("readyq: bucket index corrupt")
	}
	copy(q.buckets[i:], q.buckets[i+1:])
	q.buckets[len(q.buckets)-1] = nil
	q.buckets = q.buckets[:len(q.buckets)-1]
	var zero T
	b.head, b.tail = zero, zero
	q.free = append(q.free, b)
}

// Min returns the queued task that orders first — lowest key, then lowest
// seq — without removing it. Returns the zero T when empty.
func (q *Queue[T]) Min() T {
	var zero T
	if len(q.buckets) == 0 {
		return zero
	}
	return q.buckets[0].head
}

// PopMin removes and returns the first task (zero T when empty).
func (q *Queue[T]) PopMin() T {
	t := q.Min()
	var zero T
	if t != zero {
		q.Remove(t)
	}
	return t
}

// Update re-keys a queued task in place, preserving its original seq (and
// therefore its FIFO standing among tasks of its new rank). A no-op when
// t is not queued or the key is unchanged.
func (q *Queue[T]) Update(t T, key Key) {
	l := q.links(t)
	if l.b == nil || l.b.key == key {
		return
	}
	seq := l.seq
	q.Remove(t)
	q.Push(t, key, seq)
}

// Clear unlinks every task and recycles all buckets.
func (q *Queue[T]) Clear() {
	var zero T
	for _, b := range q.buckets {
		for t := b.head; t != zero; {
			l := q.links(t)
			nxt := l.next
			l.next, l.prev, l.b = zero, zero, nil
			t = nxt
		}
		b.head, b.tail, b.n = zero, zero, 0
		q.free = append(q.free, b)
	}
	for i := range q.buckets {
		q.buckets[i] = nil
	}
	q.buckets = q.buckets[:0]
	q.size = 0
}

// Do calls f for every queued task in dispatch order (ascending key, then
// seq). f must not mutate the queue.
func (q *Queue[T]) Do(f func(T)) {
	var zero T
	for _, b := range q.buckets {
		for t := b.head; t != zero; t = q.links(t).next {
			f(t)
		}
	}
}
