package readyq

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// node is a minimal task stand-in for the property tests.
type node struct {
	id  int
	key Key
	rq  Links[*node]
}

func nodeLinks(n *node) *Links[*node] { return &n.rq }

// reference is the naive model the queue is checked against: a plain slice
// scanned linearly, exactly like the dispatcher's old pickBest loop
// (lowest key wins, ties broken by lowest seq = earliest arrival).
type reference struct {
	entries []refEntry
}

type refEntry struct {
	n   *node
	key Key
	seq int
}

func (r *reference) push(n *node, key Key, seq int) {
	r.entries = append(r.entries, refEntry{n: n, key: key, seq: seq})
}

func (r *reference) remove(n *node) bool {
	for i, e := range r.entries {
		if e.n == n {
			r.entries = append(r.entries[:i], r.entries[i+1:]...)
			return true
		}
	}
	return false
}

func (r *reference) update(n *node, key Key) {
	for i := range r.entries {
		if r.entries[i].n == n {
			r.entries[i].key = key
			return
		}
	}
}

func (r *reference) min() *node {
	var best *refEntry
	for i := range r.entries {
		e := &r.entries[i]
		if best == nil || e.key.Less(best.key) || (e.key == best.key && e.seq < best.seq) {
			best = e
		}
	}
	if best == nil {
		return nil
	}
	return best.n
}

func (r *reference) ordered() []*node {
	sorted := append([]refEntry(nil), r.entries...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].key != sorted[j].key {
			return sorted[i].key.Less(sorted[j].key)
		}
		return sorted[i].seq < sorted[j].seq
	})
	out := make([]*node, len(sorted))
	for i, e := range sorted {
		out[i] = e.n
	}
	return out
}

// keyModel generates rank keys in the shape of one scheduling policy.
type keyModel struct {
	name string
	gen  func(rng *rand.Rand) Key
}

var keyModels = []keyModel{
	// Fixed priority (priority, RR, RM): few distinct levels, so buckets
	// are heavily shared and FIFO ordering within a level matters.
	{name: "priority", gen: func(rng *rand.Rand) Key { return Key{A: int64(rng.Intn(5))} }},
	// FCFS: every task ranks equal — one bucket, pure seq order.
	{name: "fifo", gen: func(rng *rand.Rand) Key { return Key{} }},
	// EDF: wide two-component keys (deadline, priority), mostly distinct
	// buckets, exercising the sorted-array insert/drop path.
	{name: "edf", gen: func(rng *rand.Rand) Key {
		return Key{A: int64(rng.Intn(1000)), B: int64(rng.Intn(4))}
	}},
}

// checkAgainst verifies the queue agrees with the reference on size, min
// and full dispatch order.
func checkAgainst(t *testing.T, q *Queue[*node], ref *reference, step string) {
	t.Helper()
	if q.Len() != len(ref.entries) {
		t.Fatalf("%s: Len=%d, reference has %d", step, q.Len(), len(ref.entries))
	}
	want := ref.min()
	if got := q.Min(); got != want {
		t.Fatalf("%s: Min=%v, reference says %v", step, got, want)
	}
	order := ref.ordered()
	i := 0
	q.Do(func(n *node) {
		if i < len(order) && order[i] != n {
			t.Fatalf("%s: dispatch order position %d: got node %d, want node %d",
				step, i, n.id, order[i].id)
		}
		i++
	})
	if i != len(order) {
		t.Fatalf("%s: Do visited %d tasks, want %d", step, i, len(order))
	}
}

// TestQueueMatchesLinearReference drives the queue and the naive linear
// reference with the same randomized operation stream — insert, remove,
// pop-min, round-robin rotate, re-key — and requires them to agree on the
// minimum and the full dispatch order after every step.
func TestQueueMatchesLinearReference(t *testing.T) {
	for _, km := range keyModels {
		km := km
		t.Run(km.name, func(t *testing.T) {
			for seed := int64(1); seed <= 20; seed++ {
				rng := rand.New(rand.NewSource(seed))
				q := New(nodeLinks)
				ref := &reference{}
				nodes := make([]*node, 40)
				for i := range nodes {
					nodes[i] = &node{id: i}
				}
				seq := 0
				nextSeq := func() int { seq++; return seq }
				queued := func() []*node {
					var out []*node
					for _, n := range nodes {
						if n.rq.Queued() {
							out = append(out, n)
						}
					}
					return out
				}
				for op := 0; op < 400; op++ {
					step := fmt.Sprintf("seed %d op %d", seed, op)
					switch r := rng.Intn(10); {
					case r < 4: // insert an unqueued node
						var free []*node
						for _, n := range nodes {
							if !n.rq.Queued() {
								free = append(free, n)
							}
						}
						if len(free) == 0 {
							continue
						}
						n := free[rng.Intn(len(free))]
						n.key = km.gen(rng)
						s := nextSeq()
						q.Push(n, n.key, s)
						ref.push(n, n.key, s)
					case r < 6: // remove a random queued node (e.g. it blocked)
						in := queued()
						if len(in) == 0 {
							continue
						}
						n := in[rng.Intn(len(in))]
						if !q.Remove(n) {
							t.Fatalf("%s: Remove(%d)=false for queued node", step, n.id)
						}
						ref.remove(n)
					case r < 8: // dispatch: pop the minimum
						want := ref.min()
						got := q.PopMin()
						if got != want {
							t.Fatalf("%s: PopMin=%v, reference says %v", step, got, want)
						}
						if want != nil {
							ref.remove(want)
						}
					case r < 9: // RR quantum expiry: rotate the head to the back
						// of its rank level. This is PR 4's expiry-at-completion
						// shape: the running task re-enters the ready queue with
						// a fresh seq while equal-rank peers keep theirs, so it
						// must queue behind every peer that was already waiting.
						n := q.Min()
						if n == nil {
							continue
						}
						q.Remove(n)
						ref.remove(n)
						s := nextSeq()
						q.Push(n, n.key, s)
						ref.push(n, n.key, s)
					default: // re-key in place (SetPriority/SetDeadline, PI boost)
						in := queued()
						if len(in) == 0 {
							continue
						}
						n := in[rng.Intn(len(in))]
						n.key = km.gen(rng)
						q.Update(n, n.key)
						ref.update(n, n.key)
					}
					checkAgainst(t, q, ref, step)
				}
			}
		})
	}
}

// TestUpdatePreservesFIFOStanding pins the re-key contract directly: a
// task whose rank changes keeps its original arrival seq, so among tasks
// of its new rank it sorts by when it became ready, not by when it was
// re-keyed. (This is what makes a priority-inheritance boost deterministic
// against the linear-scan dispatcher.)
func TestUpdatePreservesFIFOStanding(t *testing.T) {
	q := New(nodeLinks)
	a := &node{id: 0}
	b := &node{id: 1}
	c := &node{id: 2}
	q.Push(a, Key{A: 2}, 1) // low-priority task, ready first
	q.Push(b, Key{A: 1}, 2)
	q.Push(c, Key{A: 1}, 3)
	// Boost a into b and c's rank: its seq (1) predates theirs, so it now
	// heads the level.
	q.Update(a, Key{A: 1})
	if got := q.PopMin(); got != a {
		t.Fatalf("after boost, PopMin = node %d, want node 0", got.id)
	}
	if got := q.PopMin(); got != b {
		t.Fatalf("second PopMin = node %d, want node 1", got.id)
	}
}

// TestPushPanicsWhenQueued pins the double-push guard: re-inserting a
// queued task would corrupt the intrusive links, so it must panic rather
// than silently mis-chain.
func TestPushPanicsWhenQueued(t *testing.T) {
	q := New(nodeLinks)
	n := &node{id: 0}
	q.Push(n, Key{}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("second Push of a queued task did not panic")
		}
	}()
	q.Push(n, Key{}, 2)
}

// TestClearRecyclesAndRestarts verifies Clear leaves every node unqueued
// and the queue fully reusable.
func TestClearRecyclesAndRestarts(t *testing.T) {
	q := New(nodeLinks)
	nodes := make([]*node, 10)
	for i := range nodes {
		nodes[i] = &node{id: i}
		q.Push(nodes[i], Key{A: int64(i % 3)}, i+1)
	}
	q.Clear()
	if q.Len() != 0 {
		t.Fatalf("Len after Clear = %d, want 0", q.Len())
	}
	for _, n := range nodes {
		if n.rq.Queued() {
			t.Fatalf("node %d still queued after Clear", n.id)
		}
	}
	q.Push(nodes[3], Key{A: 7}, 11)
	if got := q.Min(); got != nodes[3] {
		t.Fatalf("Min after reuse = %v, want node 3", got)
	}
}
