package iss

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble compiles the assembly dialect into a Program. Syntax:
//
//	; comment (also after instructions)
//	label:              ; code label
//	    ldi r0, 42
//	    ld  r1, counter  ; data symbol as address
//	    st  counter, r1
//	    ldx r2, r1, 4    ; r2 = mem[r1+4]
//	    stx r1, 4, r2    ; mem[r1+4] = r2
//	    beq done
//	    trap 4
//	.data                ; switch to data section
//	counter: .word 0     ; one initialized word
//	buf:     .space 160  ; zero-filled block
//
// Numeric immediates may be decimal or 0x-hex; data symbols and code
// labels share one namespace and resolve to addresses/instruction
// indices.
func Assemble(src string) (*Program, error) {
	type fixup struct {
		instr int    // code index
		sym   string // symbol to resolve into Imm
		line  int
	}
	p := &Program{Symbols: map[string]int64{}}
	var fixups []fixup
	inData := false

	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly followed by an instruction or directive).
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if !isIdent(label) {
				return nil, fmt.Errorf("asm:%d: bad label %q", ln+1, label)
			}
			if _, dup := p.Symbols[label]; dup {
				return nil, fmt.Errorf("asm:%d: duplicate symbol %q", ln+1, label)
			}
			if inData {
				p.Symbols[label] = int64(len(p.Data))
			} else {
				p.Symbols[label] = int64(len(p.Code))
			}
			line = strings.TrimSpace(line[i+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}
		fields := splitOperands(line)
		mnem := strings.ToLower(fields[0])
		args := fields[1:]

		switch mnem {
		case ".data":
			inData = true
			continue
		case ".text":
			inData = false
			continue
		case ".word":
			for _, a := range args {
				v, err := parseImm(a)
				if err != nil {
					return nil, fmt.Errorf("asm:%d: %v", ln+1, err)
				}
				p.Data = append(p.Data, v)
			}
			continue
		case ".space":
			if len(args) != 1 {
				return nil, fmt.Errorf("asm:%d: .space needs a size", ln+1)
			}
			n, err := parseImm(args[0])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("asm:%d: bad .space size %q", ln+1, args[0])
			}
			p.Data = append(p.Data, make([]int64, n)...)
			continue
		}
		if inData {
			return nil, fmt.Errorf("asm:%d: instruction %q in .data section", ln+1, mnem)
		}

		op, ok := opByName(mnem)
		if !ok {
			return nil, fmt.Errorf("asm:%d: unknown mnemonic %q", ln+1, mnem)
		}
		in := Instr{Op: op}
		bad := func() error {
			return fmt.Errorf("asm:%d: bad operands for %s: %v", ln+1, mnem, args)
		}
		needs := func(n int) error {
			if len(args) != n {
				return bad()
			}
			return nil
		}
		reg := func(s string) (int, error) {
			s = strings.ToLower(s)
			if len(s) == 2 && s[0] == 'r' && s[1] >= '0' && s[1] < '0'+NumRegs {
				return int(s[1] - '0'), nil
			}
			return 0, fmt.Errorf("asm:%d: bad register %q", ln+1, s)
		}
		immOrSym := func(s string, instrIdx int) (int64, error) {
			if v, err := parseImm(s); err == nil {
				return v, nil
			}
			if !isIdent(s) {
				return 0, fmt.Errorf("asm:%d: bad immediate/symbol %q", ln+1, s)
			}
			fixups = append(fixups, fixup{instrIdx, s, ln + 1})
			return 0, nil
		}

		var err error
		idx := len(p.Code)
		switch op {
		case OpNop, OpHalt, OpRet, OpClra:
			err = needs(0)
		case OpLdi, OpAddi, OpCmpi, OpShl, OpShr:
			if err = needs(2); err == nil {
				if in.Rd, err = reg(args[0]); err == nil {
					in.Imm, err = immOrSym(args[1], idx)
				}
			}
		case OpLd:
			if err = needs(2); err == nil {
				if in.Rd, err = reg(args[0]); err == nil {
					in.Imm, err = immOrSym(args[1], idx)
				}
			}
		case OpSt:
			if err = needs(2); err == nil {
				if in.Imm, err = immOrSym(args[0], idx); err == nil {
					in.Rs, err = reg(args[1])
				}
			}
		case OpLdx:
			if err = needs(3); err == nil {
				if in.Rd, err = reg(args[0]); err == nil {
					if in.Rs, err = reg(args[1]); err == nil {
						in.Imm, err = immOrSym(args[2], idx)
					}
				}
			}
		case OpStx:
			if err = needs(3); err == nil {
				if in.Rd, err = reg(args[0]); err == nil {
					if in.Imm, err = immOrSym(args[1], idx); err == nil {
						in.Rs, err = reg(args[2])
					}
				}
			}
		case OpMov, OpAdd, OpSub, OpMul, OpMac, OpAnd, OpOr, OpXor, OpCmp:
			if err = needs(2); err == nil {
				if in.Rd, err = reg(args[0]); err == nil {
					in.Rs, err = reg(args[1])
				}
			}
		case OpBeq, OpBne, OpBlt, OpBge, OpJmp, OpCall:
			if err = needs(1); err == nil {
				in.Imm, err = immOrSym(args[0], idx)
			}
		case OpPush:
			if err = needs(1); err == nil {
				in.Rs, err = reg(args[0])
			}
		case OpPop, OpRda:
			if err = needs(1); err == nil {
				in.Rd, err = reg(args[0])
			}
		case OpTrap:
			if err = needs(1); err == nil {
				in.Imm, err = parseImm(args[0])
			}
		default:
			err = bad()
		}
		if err != nil {
			return nil, err
		}
		p.Code = append(p.Code, in)
	}

	for _, f := range fixups {
		v, ok := p.Symbols[f.sym]
		if !ok {
			return nil, fmt.Errorf("asm:%d: undefined symbol %q", f.line, f.sym)
		}
		p.Code[f.instr].Imm = v
	}
	return p, nil
}

// MustAssemble is Assemble that panics on error; for compile-time-constant
// firmware in tests and models.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func opByName(name string) (Op, bool) {
	for op, n := range opNames {
		if n == name {
			return Op(op), true
		}
	}
	return 0, false
}

func splitOperands(line string) []string {
	// mnemonic, then comma-separated operands with optional spaces.
	i := strings.IndexAny(line, " \t")
	if i < 0 {
		return []string{line}
	}
	out := []string{line[:i]}
	for _, f := range strings.Split(line[i+1:], ",") {
		f = strings.TrimSpace(f)
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseImm(s string) (int64, error) {
	return strconv.ParseInt(s, 0, 64)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
