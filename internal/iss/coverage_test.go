package iss

import (
	"strings"
	"testing"
)

func TestStackFaults(t *testing.T) {
	// Stack overflow: push with SP at 0.
	p := MustAssemble("push r0\nhalt")
	c, _ := NewCPU(p, 8)
	c.SP = 0
	for i := 0; i < 10 && !c.Halted; i++ {
		c.Step()
	}
	if c.Err() == nil || !strings.Contains(c.Err().Error(), "stack overflow") {
		t.Errorf("overflow err = %v", c.Err())
	}
	// Stack underflow: pop with SP at memory top.
	p2 := MustAssemble("pop r0\nhalt")
	c2, _ := NewCPU(p2, 8)
	for i := 0; i < 10 && !c2.Halted; i++ {
		c2.Step()
	}
	if c2.Err() == nil || !strings.Contains(c2.Err().Error(), "stack underflow") {
		t.Errorf("underflow err = %v", c2.Err())
	}
}

func TestBadStoreFaults(t *testing.T) {
	p := MustAssemble("st 99999, r0\nhalt")
	c, _ := NewCPU(p, 8)
	for i := 0; i < 10 && !c.Halted; i++ {
		c.Step()
	}
	if c.Err() == nil || !strings.Contains(c.Err().Error(), "bad address") {
		t.Errorf("store err = %v", c.Err())
	}
}

func TestRaiseIRQBadLinePanics(t *testing.T) {
	p := MustAssemble("halt")
	c, _ := NewCPU(p, 8)
	defer func() {
		if recover() == nil {
			t.Error("bad IRQ line did not panic")
		}
	}()
	c.RaiseIRQ(NumIRQLines)
}

func TestMustAssemblePanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble on bad source did not panic")
		}
	}()
	MustAssemble("frobnicate r0")
}

func TestRemainingALUOps(t *testing.T) {
	c := runProgram(t, `
		ldi r0, 12
		ldi r1, 10
		or  r0, r1      ; 14
		ldi r2, 6
		and r0, r2      ; 6
		shr r0, 1       ; 3
		ldi r3, -8
		shr r3, 2       ; arithmetic: -2
		ldi r4, 5
		cmpi r4, 5
		beq eq_ok
		halt
	eq_ok:
		cmpi r4, 9
		bge neg_bad     ; 5-9 < 0: not taken
		ldi r5, 1
	neg_bad:
		halt
	`, 100)
	if c.Regs[0] != 3 {
		t.Errorf("r0 = %d, want 3 ((12|10)&6 = 6, shifted right once)", c.Regs[0])
	}
	if c.Regs[3] != -2 {
		t.Errorf("r3 = %d, want -2 (arithmetic shift)", c.Regs[3])
	}
	if c.Regs[5] != 1 {
		t.Errorf("bge mis-taken: r5 = %d", c.Regs[5])
	}
}

func TestDisassemblyAllForms(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpNop}, "nop"},
		{Instr{Op: OpClra}, "clra"},
		{Instr{Op: OpLdx, Rd: 1, Rs: 2, Imm: 3}, "ldx r1, r2, 3"},
		{Instr{Op: OpStx, Rd: 1, Rs: 2, Imm: 3}, "stx r1, 3, r2"},
		{Instr{Op: OpPush, Rs: 4}, "push r4"},
		{Instr{Op: OpPop, Rd: 5}, "pop r5"},
		{Instr{Op: OpRda, Rd: 6}, "rda r6"},
		{Instr{Op: OpTrap, Imm: 7}, "trap 7"},
		{Instr{Op: OpCall, Imm: 9}, "call 9"},
		{Instr{Op: OpBlt, Imm: 2}, "blt 2"},
		{Instr{Op: OpMac, Rd: 1, Rs: 2}, "mac r1, r2"},
		{Instr{Op: OpShl, Rd: 1, Imm: 4}, "shl r1, 4"},
		{Instr{Op: OpCmpi, Rd: 3, Imm: -1}, "cmpi r3, -1"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("disasm %+v = %q, want %q", c.in, got, c.want)
		}
	}
	if Op(999).String() == "" {
		t.Error("unknown op renders empty")
	}
}

func TestIsIdentEdgeCases(t *testing.T) {
	good := []string{"a", "A_b", "x9", "_lead"}
	bad := []string{"", "9lead", "has space", "pünkt", "a-b"}
	for _, s := range good {
		if !isIdent(s) {
			t.Errorf("isIdent(%q) = false", s)
		}
	}
	for _, s := range bad {
		if isIdent(s) {
			t.Errorf("isIdent(%q) = true", s)
		}
	}
}

func TestLabelWithInlineInstruction(t *testing.T) {
	c := runProgram(t, "start: ldi r0, 9\nhalt", 10)
	if c.Regs[0] != 9 {
		t.Errorf("r0 = %d", c.Regs[0])
	}
}

func TestMultipleWordDirective(t *testing.T) {
	p := MustAssemble(".data\ntbl: .word 1, 2, 3")
	if len(p.Data) != 3 || p.Data[2] != 3 {
		t.Errorf("data = %v", p.Data)
	}
}

func TestDataImageTooLarge(t *testing.T) {
	p := MustAssemble(".data\nbig: .space 100")
	if _, err := NewCPU(p, 10); err == nil {
		t.Error("oversized data image accepted")
	}
}
