// Package iss implements a small instruction-set simulator standing in
// for the paper's implementation-model processor (a Motorola DSP56600
// with a commercial ISS, which we cannot redistribute — see DESIGN.md's
// substitution table). The machine is a word-addressed load/store DSP-like
// core with eight general registers, a hardware stack pointer, condition
// flags, an external interrupt line, per-instruction cycle costs, and a
// TRAP instruction that calls into a host-modeled kernel (internal/
// ukernel). Programs are written in a simple assembly dialect compiled by
// the two-pass assembler in asm.go.
package iss

import "fmt"

// Op is an instruction opcode.
type Op int

// The instruction set. Rd/Rs denote register operands, Imm an immediate
// or resolved address/branch target.
const (
	OpNop  Op = iota // nop
	OpHalt           // halt: stop the core
	OpLdi            // ldi rd, imm        rd = imm
	OpLd             // ld rd, sym         rd = mem[sym]
	OpSt             // st sym, rs         mem[sym] = rs
	OpLdx            // ldx rd, rs, off    rd = mem[rs+off]
	OpStx            // stx rd, off, rs    mem[rd+off] = rs
	OpMov            // mov rd, rs         rd = rs
	OpAdd            // add rd, rs         rd += rs
	OpAddi           // addi rd, imm       rd += imm
	OpSub            // sub rd, rs         rd -= rs
	OpMul            // mul rd, rs         rd *= rs (DSP multiply)
	OpMac            // mac rd, rs         acc += rd*rs (accumulator)
	OpClra           // clra               acc = 0
	OpRda            // rda rd             rd = acc
	OpAnd            // and rd, rs
	OpOr             // or rd, rs
	OpXor            // xor rd, rs
	OpShl            // shl rd, imm
	OpShr            // shr rd, imm (arithmetic)
	OpCmp            // cmp rd, rs         set Z/N from rd-rs
	OpCmpi           // cmpi rd, imm
	OpBeq            // beq label
	OpBne            // bne label
	OpBlt            // blt label
	OpBge            // bge label
	OpJmp            // jmp label
	OpCall           // call label
	OpRet            // ret
	OpPush           // push rs
	OpPop            // pop rd
	OpTrap           // trap n: kernel service call
	opCount
)

// opNames maps opcodes to assembly mnemonics.
var opNames = [opCount]string{
	OpNop: "nop", OpHalt: "halt", OpLdi: "ldi", OpLd: "ld", OpSt: "st",
	OpLdx: "ldx", OpStx: "stx", OpMov: "mov", OpAdd: "add", OpAddi: "addi",
	OpSub: "sub", OpMul: "mul", OpMac: "mac", OpClra: "clra", OpRda: "rda",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpCmp: "cmp", OpCmpi: "cmpi", OpBeq: "beq", OpBne: "bne", OpBlt: "blt",
	OpBge: "bge", OpJmp: "jmp", OpCall: "call", OpRet: "ret",
	OpPush: "push", OpPop: "pop", OpTrap: "trap",
}

// String returns the mnemonic.
func (o Op) String() string {
	if o >= 0 && int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// cycleCost models per-instruction execution time, loosely following
// fixed-point DSP timing: single-cycle ALU, two-cycle memory and multiply,
// multi-cycle control transfers and traps.
var cycleCost = [opCount]uint64{
	OpNop: 1, OpHalt: 1, OpLdi: 1, OpLd: 2, OpSt: 2, OpLdx: 2, OpStx: 2,
	OpMov: 1, OpAdd: 1, OpAddi: 1, OpSub: 1, OpMul: 2, OpMac: 2,
	OpClra: 1, OpRda: 1, OpAnd: 1, OpOr: 1, OpXor: 1, OpShl: 1, OpShr: 1,
	OpCmp: 1, OpCmpi: 1, OpBeq: 2, OpBne: 2, OpBlt: 2, OpBge: 2,
	OpJmp: 2, OpCall: 4, OpRet: 4, OpPush: 2, OpPop: 2, OpTrap: 8,
}

// Cost returns the cycle cost of an opcode.
func Cost(o Op) uint64 { return cycleCost[o] }

// Instr is one decoded instruction.
type Instr struct {
	Op  Op
	Rd  int   // destination / first register
	Rs  int   // source / second register
	Imm int64 // immediate, memory address, branch target or trap number
}

// String disassembles the instruction.
func (i Instr) String() string {
	switch i.Op {
	case OpNop, OpHalt, OpRet, OpClra:
		return i.Op.String()
	case OpLdi, OpAddi, OpCmpi, OpShl, OpShr:
		return fmt.Sprintf("%s r%d, %d", i.Op, i.Rd, i.Imm)
	case OpLd:
		return fmt.Sprintf("%s r%d, [%d]", i.Op, i.Rd, i.Imm)
	case OpSt:
		return fmt.Sprintf("%s [%d], r%d", i.Op, i.Imm, i.Rs)
	case OpLdx:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rd, i.Rs, i.Imm)
	case OpStx:
		return fmt.Sprintf("%s r%d, %d, r%d", i.Op, i.Rd, i.Imm, i.Rs)
	case OpMov, OpAdd, OpSub, OpMul, OpMac, OpAnd, OpOr, OpXor, OpCmp:
		return fmt.Sprintf("%s r%d, r%d", i.Op, i.Rd, i.Rs)
	case OpBeq, OpBne, OpBlt, OpBge, OpJmp, OpCall:
		return fmt.Sprintf("%s %d", i.Op, i.Imm)
	case OpPush:
		return fmt.Sprintf("%s r%d", i.Op, i.Rs)
	case OpPop, OpRda:
		return fmt.Sprintf("%s r%d", i.Op, i.Rd)
	case OpTrap:
		return fmt.Sprintf("%s %d", i.Op, i.Imm)
	default:
		return i.Op.String()
	}
}

// Program is an assembled unit: code, initialized data image and the
// symbol table.
type Program struct {
	Code    []Instr
	Data    []int64          // initial data memory image
	Symbols map[string]int64 // label -> code index or data address
}

// Entry returns the address of a code label.
func (p *Program) Entry(label string) (int64, error) {
	a, ok := p.Symbols[label]
	if !ok {
		return 0, fmt.Errorf("iss: unknown label %q", label)
	}
	return a, nil
}
