package iss

import (
	"testing"
	"testing/quick"
)

// refState mirrors the CPU's architectural state for differential testing.
type refState struct {
	regs  [NumRegs]int64
	acc   int64
	flagZ bool
	flagN bool
}

func (r *refState) setFlags(v int64) { r.flagZ = v == 0; r.flagN = v < 0 }

// genStraightLine builds a random straight-line program (no memory, no
// control flow) and simultaneously computes the expected final state with
// an independent reference implementation.
func genStraightLine(seed uint64, n int) ([]Instr, refState) {
	var ref refState
	var code []Instr
	x := seed
	next := func() uint64 {
		x = x*6364136223846793005 + 1442695040888963407
		return x >> 8
	}
	for i := 0; i < n; i++ {
		rd := int(next() % NumRegs)
		rs := int(next() % NumRegs)
		imm := int64(next()%201) - 100
		switch next() % 10 {
		case 0:
			code = append(code, Instr{Op: OpLdi, Rd: rd, Imm: imm})
			ref.regs[rd] = imm
		case 1:
			code = append(code, Instr{Op: OpMov, Rd: rd, Rs: rs})
			ref.regs[rd] = ref.regs[rs]
		case 2:
			code = append(code, Instr{Op: OpAdd, Rd: rd, Rs: rs})
			ref.regs[rd] += ref.regs[rs]
			ref.setFlags(ref.regs[rd])
		case 3:
			code = append(code, Instr{Op: OpAddi, Rd: rd, Imm: imm})
			ref.regs[rd] += imm
			ref.setFlags(ref.regs[rd])
		case 4:
			code = append(code, Instr{Op: OpSub, Rd: rd, Rs: rs})
			ref.regs[rd] -= ref.regs[rs]
			ref.setFlags(ref.regs[rd])
		case 5:
			code = append(code, Instr{Op: OpMul, Rd: rd, Rs: rs})
			ref.regs[rd] *= ref.regs[rs]
			ref.setFlags(ref.regs[rd])
		case 6:
			code = append(code, Instr{Op: OpAnd, Rd: rd, Rs: rs})
			ref.regs[rd] &= ref.regs[rs]
			ref.setFlags(ref.regs[rd])
		case 7:
			code = append(code, Instr{Op: OpXor, Rd: rd, Rs: rs})
			ref.regs[rd] ^= ref.regs[rs]
			ref.setFlags(ref.regs[rd])
		case 8:
			sh := int64(next() % 8)
			code = append(code, Instr{Op: OpShl, Rd: rd, Imm: sh})
			ref.regs[rd] <<= uint(sh)
			ref.setFlags(ref.regs[rd])
		case 9:
			code = append(code, Instr{Op: OpMac, Rd: rd, Rs: rs})
			ref.acc += ref.regs[rd] * ref.regs[rs]
		}
	}
	code = append(code, Instr{Op: OpHalt})
	return code, ref
}

// TestQuickStraightLineDifferential: the interpreter agrees with an
// independent reference on random arithmetic programs, and the cycle
// count equals the sum of the per-instruction costs.
func TestQuickStraightLineDifferential(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%60) + 1
		code, want := genStraightLine(seed, n)
		var wantCycles uint64
		for _, in := range code {
			wantCycles += Cost(in.Op)
		}
		cpu, err := NewCPU(&Program{Code: code}, 64)
		if err != nil {
			return false
		}
		for !cpu.Halted {
			cpu.Step()
		}
		if cpu.Err() != nil {
			t.Logf("fault: %v", cpu.Err())
			return false
		}
		if cpu.Regs != want.regs || cpu.Acc != want.acc {
			t.Logf("seed %d: state mismatch\n got %v acc=%d\nwant %v acc=%d",
				seed, cpu.Regs, cpu.Acc, want.regs, want.acc)
			return false
		}
		if cpu.Cycles != wantCycles {
			t.Logf("seed %d: cycles %d, want %d", seed, cpu.Cycles, wantCycles)
			return false
		}
		return cpu.Insts == uint64(len(code))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickAssembleRoundTrip: disassembled straight-line programs
// re-assemble to identical code.
func TestQuickAssembleRoundTrip(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		code, _ := genStraightLine(seed, n)
		src := ""
		for _, in := range code {
			s := in.String()
			// The disassembler renders ld/st with brackets; straight-line
			// generation avoids them, so strings re-parse directly.
			src += s + "\n"
		}
		prog, err := Assemble(src)
		if err != nil {
			t.Logf("seed %d: reassembly failed: %v\n%s", seed, err, src)
			return false
		}
		if len(prog.Code) != len(code) {
			return false
		}
		for i := range code {
			if prog.Code[i] != code[i] {
				t.Logf("seed %d: instr %d: %v != %v", seed, i, prog.Code[i], code[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
