package iss

import (
	"strings"
	"testing"
)

func runProgram(t *testing.T, src string, maxSteps int) *CPU {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c, err := NewCPU(p, 4096)
	if err != nil {
		t.Fatalf("cpu: %v", err)
	}
	for i := 0; i < maxSteps && !c.Halted; i++ {
		c.Step()
	}
	if !c.Halted {
		t.Fatalf("program did not halt in %d steps", maxSteps)
	}
	if c.Err() != nil {
		t.Fatalf("execution fault: %v", c.Err())
	}
	return c
}

func TestArithmetic(t *testing.T) {
	c := runProgram(t, `
		ldi r0, 6
		ldi r1, 7
		mul r0, r1      ; 42
		addi r0, -2     ; 40
		ldi r2, 4
		sub r0, r2      ; 36
		shl r0, 1       ; 72
		shr r0, 3       ; 9
		halt
	`, 100)
	if c.Regs[0] != 9 {
		t.Errorf("r0 = %d, want 9", c.Regs[0])
	}
}

func TestLoadStoreAndData(t *testing.T) {
	c := runProgram(t, `
		ld  r0, answer
		addi r0, 1
		st  result, r0
		ldi r1, result
		ldx r2, r1, 0
		halt
	.data
	answer: .word 41
	result: .word 0
	`, 100)
	if c.Regs[2] != 42 {
		t.Errorf("r2 = %d, want 42", c.Regs[2])
	}
	if c.Mem[1] != 42 {
		t.Errorf("mem[result] = %d, want 42", c.Mem[1])
	}
}

func TestBranchLoop(t *testing.T) {
	// Sum 1..10 = 55.
	c := runProgram(t, `
		ldi r0, 0      ; sum
		ldi r1, 10     ; i
	loop:
		add r0, r1
		addi r1, -1
		cmpi r1, 0
		bne loop
		halt
	`, 1000)
	if c.Regs[0] != 55 {
		t.Errorf("sum = %d, want 55", c.Regs[0])
	}
}

func TestCallRetStack(t *testing.T) {
	c := runProgram(t, `
		ldi r0, 5
		call double
		call double
		halt
	double:
		add r0, r0
		ret
	`, 100)
	if c.Regs[0] != 20 {
		t.Errorf("r0 = %d, want 20", c.Regs[0])
	}
}

func TestPushPop(t *testing.T) {
	c := runProgram(t, `
		ldi r0, 11
		ldi r1, 22
		push r0
		push r1
		pop r2
		pop r3
		halt
	`, 100)
	if c.Regs[2] != 22 || c.Regs[3] != 11 {
		t.Errorf("r2,r3 = %d,%d, want 22,11 (LIFO)", c.Regs[2], c.Regs[3])
	}
}

func TestMacAccumulator(t *testing.T) {
	// Dot product of [1,2,3]·[4,5,6] = 32.
	c := runProgram(t, `
		clra
		ldi r0, 1
		ldi r1, 4
		mac r0, r1
		ldi r0, 2
		ldi r1, 5
		mac r0, r1
		ldi r0, 3
		ldi r1, 6
		mac r0, r1
		rda r2
		halt
	`, 100)
	if c.Regs[2] != 32 {
		t.Errorf("acc = %d, want 32", c.Regs[2])
	}
}

func TestTrapHandler(t *testing.T) {
	p := MustAssemble(`
		ldi r0, 7
		trap 3
		halt
	`)
	c, err := NewCPU(p, 256)
	if err != nil {
		t.Fatal(err)
	}
	var gotTrap, gotArg int64
	c.TrapHandler = func(n int64) uint64 {
		gotTrap = n
		gotArg = c.Regs[0]
		return 25
	}
	before := c.Cycles
	for !c.Halted {
		c.Step()
	}
	if gotTrap != 3 || gotArg != 7 {
		t.Errorf("trap = %d arg = %d, want 3, 7", gotTrap, gotArg)
	}
	// ldi(1) + trap(8+25) + halt(1) = 35.
	if got := c.Cycles - before; got != 35 {
		t.Errorf("cycles = %d, want 35", got)
	}
}

func TestInterruptDelivery(t *testing.T) {
	p := MustAssemble(`
	loop:
		addi r0, 1
		jmp loop
	`)
	c, err := NewCPU(p, 256)
	if err != nil {
		t.Fatal(err)
	}
	served := false
	c.IRQHandler = func(line int) uint64 {
		served = true
		c.Halted = true // handler stops the test program
		return 10
	}
	for i := 0; i < 10; i++ {
		c.Step()
	}
	c.RaiseIRQ(0)
	if !c.IRQPending() {
		t.Fatal("irq line not pending after raise")
	}
	c.Step()
	if !served {
		t.Fatal("interrupt not delivered on next step")
	}
	if c.IRQPending() {
		t.Error("irq line still pending after delivery")
	}
}

func TestInterruptMaskedWhileDisabled(t *testing.T) {
	p := MustAssemble(`
		addi r0, 1
		addi r0, 1
		halt
	`)
	c, _ := NewCPU(p, 64)
	c.IntEnable = false
	fired := false
	c.IRQHandler = func(line int) uint64 { fired = true; return 0 }
	c.RaiseIRQ(0)
	for !c.Halted {
		c.Step()
	}
	if fired {
		t.Error("interrupt delivered while disabled")
	}
	if !c.IRQPending() {
		t.Error("interrupt lost instead of staying pending")
	}
}

func TestCycleAccounting(t *testing.T) {
	c := runProgram(t, `
		ldi r0, 1   ; 1
		ld  r1, w   ; 2
		add r0, r1  ; 1
		halt        ; 1
	.data
	w: .word 5
	`, 10)
	if c.Cycles != 5 {
		t.Errorf("cycles = %d, want 5", c.Cycles)
	}
	if c.Insts != 4 {
		t.Errorf("insts = %d, want 4", c.Insts)
	}
}

func TestRunBatchStopsAtTrap(t *testing.T) {
	p := MustAssemble(`
		addi r0, 1
		addi r0, 1
		trap 1
		addi r0, 1
		halt
	`)
	c, _ := NewCPU(p, 64)
	trapped := false
	c.TrapHandler = func(n int64) uint64 { trapped = true; return 0 }
	c.RunBatch(100)
	if !trapped {
		t.Fatal("batch did not reach trap")
	}
	if c.Regs[0] != 2 {
		t.Errorf("r0 = %d at batch end, want 2 (stop right after trap)", c.Regs[0])
	}
}

func TestFaults(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"bad-load", "ld r0, 99999\nhalt", "bad address"},
		{"unhandled-trap", "trap 1\nhalt", "unhandled trap"},
		{"fetch-off-end", "addi r0, 1", "instruction fetch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := Assemble(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			c, _ := NewCPU(p, 16)
			for i := 0; i < 100 && !c.Halted; i++ {
				c.Step()
			}
			if c.Err() == nil || !strings.Contains(c.Err().Error(), tc.want) {
				t.Errorf("err = %v, want containing %q", c.Err(), tc.want)
			}
		})
	}
}

func TestAssemblerErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"unknown-mnemonic", "frobnicate r0", "unknown mnemonic"},
		{"bad-register", "ldi r9, 1", "bad register"},
		{"undefined-symbol", "jmp nowhere", "undefined symbol"},
		{"duplicate-label", "a:\na:\nhalt", "duplicate symbol"},
		{"instr-in-data", ".data\nldi r0, 1", "in .data section"},
		{"bad-operand-count", "add r0", "bad operands"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Assemble(tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestDisassembly(t *testing.T) {
	p := MustAssemble(`
		ldi r0, 42
		st 5, r0
		jmp 0
	`)
	wants := []string{"ldi r0, 42", "st [5], r0", "jmp 0"}
	for i, w := range wants {
		if got := p.Code[i].String(); got != w {
			t.Errorf("disasm[%d] = %q, want %q", i, got, w)
		}
	}
}

func TestHexImmediates(t *testing.T) {
	c := runProgram(t, "ldi r0, 0xff\nhalt", 10)
	if c.Regs[0] != 255 {
		t.Errorf("r0 = %d, want 255", c.Regs[0])
	}
}

func TestEntryLookup(t *testing.T) {
	p := MustAssemble("start:\nhalt")
	if a, err := p.Entry("start"); err != nil || a != 0 {
		t.Errorf("Entry(start) = %d, %v", a, err)
	}
	if _, err := p.Entry("missing"); err == nil {
		t.Error("Entry(missing) did not fail")
	}
}
