package iss

import "fmt"

// NumRegs is the number of general-purpose registers.
const NumRegs = 8

// CPU is the processor state. Memory is word-addressed (one int64 per
// address). The stack grows downward from the initial SP. External
// interrupts are delivered between instructions to the IRQHandler hook —
// the para-virtualized kernel entry of the implementation model (see
// DESIGN.md's substitution table); likewise TrapHandler receives TRAP
// instructions.
type CPU struct {
	Regs  [NumRegs]int64
	Acc   int64 // multiply-accumulate register
	PC    int64 // instruction index into Code
	SP    int64 // stack pointer (word address, grows down)
	FlagZ bool
	FlagN bool

	Mem  []int64
	Code []Instr

	Halted    bool
	IntEnable bool
	irqMask   uint64 // pending interrupt lines (bit i = line i)

	Cycles uint64 // total consumed cycles
	Insts  uint64 // retired instruction count

	// TrapHandler services TRAP n; it may mutate the whole CPU state
	// (context switch) and returns additional cycles consumed by the
	// kernel. A nil handler makes TRAP halt with an error.
	TrapHandler func(n int64) uint64
	// IRQHandler services a pending external interrupt (delivered between
	// instructions while IntEnable); lines are vectored, lowest line
	// first. Returns kernel cycles consumed.
	IRQHandler func(line int) uint64

	err error
}

// NewCPU creates a CPU with the given memory size, loads the program's
// code and data image, and points SP at the top of memory.
func NewCPU(p *Program, memWords int) (*CPU, error) {
	if len(p.Data) > memWords {
		return nil, fmt.Errorf("iss: data image (%d words) exceeds memory (%d)", len(p.Data), memWords)
	}
	c := &CPU{
		Mem:       make([]int64, memWords),
		Code:      p.Code,
		SP:        int64(memWords),
		IntEnable: true,
	}
	copy(c.Mem, p.Data)
	return c, nil
}

// Err returns the first execution fault (bad address, stack overflow,
// unhandled trap), or nil.
func (c *CPU) Err() error { return c.err }

// NumIRQLines is the number of vectored interrupt lines.
const NumIRQLines = 64

// RaiseIRQ asserts an external interrupt line (0..NumIRQLines-1). The
// interrupt is taken before the next instruction while interrupts are
// enabled; the line stays asserted until taken. Lower line numbers have
// higher delivery priority.
func (c *CPU) RaiseIRQ(line int) {
	if line < 0 || line >= NumIRQLines {
		panic(fmt.Sprintf("iss: bad interrupt line %d", line))
	}
	c.irqMask |= 1 << uint(line)
}

// IRQPending reports whether any line is asserted and untaken.
func (c *CPU) IRQPending() bool { return c.irqMask != 0 }

// lowestIRQ returns and clears the highest-priority pending line.
func (c *CPU) lowestIRQ() int {
	for i := 0; i < NumIRQLines; i++ {
		if c.irqMask&(1<<uint(i)) != 0 {
			c.irqMask &^= 1 << uint(i)
			return i
		}
	}
	return -1
}

// fault stops execution with an error.
func (c *CPU) fault(format string, args ...interface{}) uint64 {
	c.err = fmt.Errorf("iss: "+format+" (pc=%d cycles=%d)", append(args, c.PC, c.Cycles)...)
	c.Halted = true
	return 1
}

func (c *CPU) load(addr int64) int64 {
	if addr < 0 || addr >= int64(len(c.Mem)) {
		c.fault("load from bad address %d", addr)
		return 0
	}
	return c.Mem[addr]
}

func (c *CPU) store(addr, v int64) {
	if addr < 0 || addr >= int64(len(c.Mem)) {
		c.fault("store to bad address %d", addr)
		return
	}
	c.Mem[addr] = v
}

func (c *CPU) push(v int64) {
	c.SP--
	if c.SP < 0 {
		c.fault("stack overflow")
		return
	}
	c.Mem[c.SP] = v
}

func (c *CPU) pop() int64 {
	if c.SP >= int64(len(c.Mem)) {
		c.fault("stack underflow")
		return 0
	}
	v := c.Mem[c.SP]
	c.SP++
	return v
}

func (c *CPU) setFlags(v int64) {
	c.FlagZ = v == 0
	c.FlagN = v < 0
}

// Step executes one instruction (servicing a pending interrupt first) and
// returns the cycles it consumed. On a halted CPU, Step returns 0.
func (c *CPU) Step() uint64 {
	if c.Halted {
		return 0
	}
	if c.irqMask != 0 && c.IntEnable && c.IRQHandler != nil {
		line := c.lowestIRQ()
		cost := 6 + c.IRQHandler(line) // 6-cycle interrupt entry + kernel time
		c.Cycles += cost
		return cost
	}
	if c.PC < 0 || c.PC >= int64(len(c.Code)) {
		return c.fault("instruction fetch from bad address %d", c.PC)
	}
	in := c.Code[c.PC]
	c.PC++
	c.Insts++
	cost := cycleCost[in.Op]

	switch in.Op {
	case OpNop:
	case OpHalt:
		c.Halted = true
	case OpLdi:
		c.Regs[in.Rd] = in.Imm
	case OpLd:
		c.Regs[in.Rd] = c.load(in.Imm)
	case OpSt:
		c.store(in.Imm, c.Regs[in.Rs])
	case OpLdx:
		c.Regs[in.Rd] = c.load(c.Regs[in.Rs] + in.Imm)
	case OpStx:
		c.store(c.Regs[in.Rd]+in.Imm, c.Regs[in.Rs])
	case OpMov:
		c.Regs[in.Rd] = c.Regs[in.Rs]
	case OpAdd:
		c.Regs[in.Rd] += c.Regs[in.Rs]
		c.setFlags(c.Regs[in.Rd])
	case OpAddi:
		c.Regs[in.Rd] += in.Imm
		c.setFlags(c.Regs[in.Rd])
	case OpSub:
		c.Regs[in.Rd] -= c.Regs[in.Rs]
		c.setFlags(c.Regs[in.Rd])
	case OpMul:
		c.Regs[in.Rd] *= c.Regs[in.Rs]
		c.setFlags(c.Regs[in.Rd])
	case OpMac:
		c.Acc += c.Regs[in.Rd] * c.Regs[in.Rs]
	case OpClra:
		c.Acc = 0
	case OpRda:
		c.Regs[in.Rd] = c.Acc
	case OpAnd:
		c.Regs[in.Rd] &= c.Regs[in.Rs]
		c.setFlags(c.Regs[in.Rd])
	case OpOr:
		c.Regs[in.Rd] |= c.Regs[in.Rs]
		c.setFlags(c.Regs[in.Rd])
	case OpXor:
		c.Regs[in.Rd] ^= c.Regs[in.Rs]
		c.setFlags(c.Regs[in.Rd])
	case OpShl:
		c.Regs[in.Rd] <<= uint(in.Imm)
		c.setFlags(c.Regs[in.Rd])
	case OpShr:
		c.Regs[in.Rd] >>= uint(in.Imm)
		c.setFlags(c.Regs[in.Rd])
	case OpCmp:
		c.setFlags(c.Regs[in.Rd] - c.Regs[in.Rs])
	case OpCmpi:
		c.setFlags(c.Regs[in.Rd] - in.Imm)
	case OpBeq:
		if c.FlagZ {
			c.PC = in.Imm
		}
	case OpBne:
		if !c.FlagZ {
			c.PC = in.Imm
		}
	case OpBlt:
		if c.FlagN {
			c.PC = in.Imm
		}
	case OpBge:
		if !c.FlagN {
			c.PC = in.Imm
		}
	case OpJmp:
		c.PC = in.Imm
	case OpCall:
		c.push(c.PC)
		c.PC = in.Imm
	case OpRet:
		c.PC = c.pop()
	case OpPush:
		c.push(c.Regs[in.Rs])
	case OpPop:
		c.Regs[in.Rd] = c.pop()
	case OpTrap:
		if c.TrapHandler == nil {
			return c.fault("unhandled trap %d", in.Imm)
		}
		cost += c.TrapHandler(in.Imm)
	default:
		return c.fault("illegal opcode %d", int(in.Op))
	}
	c.Cycles += cost
	return cost
}

// RunBatch executes up to maxInsts instructions, stopping early on halt,
// fault, or after a trap/interrupt (so the caller can synchronize modeled
// time with the embedding simulation at kernel-visible points). It returns
// the cycles consumed.
func (c *CPU) RunBatch(maxInsts int) uint64 {
	var cycles uint64
	for i := 0; i < maxInsts && !c.Halted; i++ {
		trapOrIRQ := (c.irqMask != 0 && c.IntEnable) ||
			(c.PC >= 0 && c.PC < int64(len(c.Code)) && c.Code[c.PC].Op == OpTrap)
		cycles += c.Step()
		if trapOrIRQ {
			break
		}
	}
	return cycles
}
