// Package runner is a bounded worker-pool batch-execution engine for
// running many independent simulations concurrently. The paper's whole
// argument is simulation speed; every batch workload in this repository
// (experiment sweeps, design-space exploration, the simcheck matrix,
// simfuzz soaks) consists of thousands of mutually independent kernels,
// which the runner spreads over the machine while keeping results
// deterministic:
//
//   - jobs are submitted with an implicit submission index and results are
//     delivered in submission order regardless of completion order, so any
//     output derived from them is byte-identical to a sequential run;
//   - a panicking job becomes a per-job error (PanicError) instead of a
//     crashed sweep;
//   - an optional per-job wall-clock watchdog turns a hung job into a
//     TimeoutError (the stuck goroutine is abandoned, not killed — Go
//     offers no way to preempt it — so a timed-out job may leak its
//     kernel's goroutines; see sim.Kernel.Shutdown).
//
// Each job must build its own sim.Kernel (and RTOS model instances,
// recorders, RNGs): kernels are single-threaded internally, and the
// concurrency contract is one kernel per goroutine. Jobs should defer
// Kernel.Shutdown so finished simulations release their process
// goroutines.
package runner

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Options configures a Pool or a Map call.
type Options struct {
	// Jobs is the number of concurrent workers; <= 0 selects
	// runtime.NumCPU(). Jobs = 1 executes strictly sequentially.
	Jobs int
	// Timeout, if positive, is the per-job wall-clock watchdog: a job
	// running longer fails with a TimeoutError and its goroutine is
	// abandoned.
	Timeout time.Duration
	// Retry is the worker-loss policy: a job whose worker is lost — a
	// panic (PanicError) or a watchdog expiry (TimeoutError) — is
	// re-dispatched up to Retry more times before its error is delivered.
	// A job that merely returns an error is never retried: application
	// failures are results, only lost workers are requeued. The delivered
	// Result carries the dispatch count in Attempts, so callers can flag
	// requeued work instead of silently absorbing it. Default 0 keeps the
	// original fail-fast behavior.
	Retry int
}

func (o Options) workers() int {
	if o.Jobs > 0 {
		return o.Jobs
	}
	return runtime.NumCPU()
}

// ErrTimeout is matched by errors.Is for watchdog failures.
var ErrTimeout = errors.New("runner: job exceeded watchdog timeout")

// TimeoutError reports that a job's wall-clock watchdog fired.
type TimeoutError struct {
	Index int
	Limit time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("runner: job %d exceeded watchdog timeout %v", e.Index, e.Limit)
}

// Is makes errors.Is(err, ErrTimeout) true for TimeoutErrors.
func (e *TimeoutError) Is(target error) bool { return target == ErrTimeout }

// PanicError is the per-job error a recovered panic becomes.
type PanicError struct {
	Index int
	Value interface{}
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %d panicked: %v", e.Index, e.Value)
}

// Result is one job's outcome, tagged with its submission index.
type Result[T any] struct {
	Index    int
	Value    T
	Err      error
	Wall     time.Duration // host execution time of the job (all dispatches)
	Attempts int           // dispatch count: > 1 means the job was requeued after a worker loss
}

// job pairs a submission index with its work function.
type job[T any] struct {
	index int
	fn    func() (T, error)
}

// Pool runs submitted jobs on a fixed set of workers and streams results
// in submission order. Submit and Close must be called from one producer
// goroutine; Results is consumed elsewhere (consuming from the submitting
// goroutine after Close is also fine). Submit applies backpressure: it
// blocks while all workers are busy, so the reorder buffer stays bounded
// by the worker count.
type Pool[T any] struct {
	opts      Options
	jobs      chan job[T]
	collect   chan Result[T]
	results   chan Result[T]
	wg        sync.WaitGroup
	submitted int
}

// NewPool starts the workers and the in-order result collector.
func NewPool[T any](opts Options) *Pool[T] {
	n := opts.workers()
	p := &Pool[T]{
		opts:    opts,
		jobs:    make(chan job[T]),
		collect: make(chan Result[T], n),
		results: make(chan Result[T], n),
	}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go p.worker()
	}
	go func() {
		p.wg.Wait()
		close(p.collect)
	}()
	go p.reorder()
	return p
}

// Submit enqueues a job and returns its submission index.
func (p *Pool[T]) Submit(fn func() (T, error)) int {
	idx := p.submitted
	p.submitted++
	p.jobs <- job[T]{index: idx, fn: fn}
	return idx
}

// Close ends submission; Results delivers the remaining outcomes and is
// then closed.
func (p *Pool[T]) Close() { close(p.jobs) }

// Results returns the in-submission-order result stream.
func (p *Pool[T]) Results() <-chan Result[T] { return p.results }

func (p *Pool[T]) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		p.collect <- p.runOne(j)
	}
}

// reorder buffers out-of-order completions and emits results strictly by
// submission index.
func (p *Pool[T]) reorder() {
	pending := map[int]Result[T]{}
	next := 0
	for r := range p.collect {
		pending[r.Index] = r
		for {
			rdy, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			p.results <- rdy
			next++
		}
	}
	close(p.results)
}

// runOne executes one job, re-dispatching it after a worker loss (panic
// or watchdog expiry) up to Retry times. Every dispatch is accounted in
// Attempts; a requeued job is therefore never silently dropped — it
// either delivers a value or its last worker-loss error, flagged with
// the dispatch count.
func (p *Pool[T]) runOne(j job[T]) Result[T] {
	var r Result[T]
	for attempt := 1; ; attempt++ {
		r = p.dispatch(j)
		r.Attempts = attempt
		if r.Err == nil || attempt > p.opts.Retry {
			return r
		}
		var pe *PanicError
		if !errors.As(r.Err, &pe) && !errors.Is(r.Err, ErrTimeout) {
			// An error returned by the job itself is an application
			// result, not a lost worker: deliver it as-is.
			return r
		}
	}
}

// dispatch executes one job once with panic isolation and the optional
// watchdog.
func (p *Pool[T]) dispatch(j job[T]) Result[T] {
	start := time.Now()
	if p.opts.Timeout <= 0 {
		r := guarded(j)
		r.Wall = time.Since(start)
		return r
	}
	done := make(chan Result[T], 1)
	go func() { done <- guarded(j) }()
	timer := time.NewTimer(p.opts.Timeout)
	defer timer.Stop()
	select {
	case r := <-done:
		r.Wall = time.Since(start)
		return r
	case <-timer.C:
		return Result[T]{
			Index: j.index,
			Err:   &TimeoutError{Index: j.index, Limit: p.opts.Timeout},
			Wall:  time.Since(start),
		}
	}
}

// guarded runs the job function, converting a panic into a PanicError.
func guarded[T any](j job[T]) (res Result[T]) {
	res.Index = j.index
	defer func() {
		if r := recover(); r != nil {
			res.Err = &PanicError{Index: j.index, Value: r, Stack: debug.Stack()}
		}
	}()
	res.Value, res.Err = j.fn()
	return res
}

// Map runs fn for every index 0..n-1 and returns the results indexed by
// submission order — the batch counterpart of a sequential for loop.
func Map[T any](n int, opts Options, fn func(i int) (T, error)) []Result[T] {
	out := make([]Result[T], n)
	if n == 0 {
		return out
	}
	p := NewPool[T](opts)
	go func() {
		for i := 0; i < n; i++ {
			i := i
			p.Submit(func() (T, error) { return fn(i) })
		}
		p.Close()
	}()
	for r := range p.Results() {
		out[r.Index] = r
	}
	return out
}

// Values unwraps results into their values, preserving submission order.
// It returns the first error encountered, if any, alongside the values
// collected so far — convenient for merging per-job artifacts (e.g.
// telemetry reports) after a sweep.
func Values[T any](results []Result[T]) ([]T, error) {
	out := make([]T, 0, len(results))
	for _, r := range results {
		if r.Err != nil {
			return out, r.Err
		}
		out = append(out, r.Value)
	}
	return out, nil
}

// FirstErr returns the first failed result's error, or nil.
func FirstErr[T any](results []Result[T]) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}
