package runner

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapOrder: results come back in submission order even when later
// jobs finish first.
func TestMapOrder(t *testing.T) {
	const n = 64
	results := Map(n, Options{Jobs: 8}, func(i int) (int, error) {
		// Earlier jobs sleep longer, so completion order is roughly the
		// reverse of submission order.
		time.Sleep(time.Duration(n-i) * 100 * time.Microsecond)
		return i * i, nil
	})
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for i, r := range results {
		if r.Index != i || r.Value != i*i || r.Err != nil {
			t.Fatalf("result %d = {Index:%d Value:%d Err:%v}, want {%d %d nil}",
				i, r.Index, r.Value, r.Err, i, i*i)
		}
	}
}

// TestPoolStreamingOrder: the Pool's result stream is in submission order.
func TestPoolStreamingOrder(t *testing.T) {
	p := NewPool[int](Options{Jobs: 4})
	const n = 40
	go func() {
		for i := 0; i < n; i++ {
			i := i
			p.Submit(func() (int, error) {
				time.Sleep(time.Duration((i%5)*200) * time.Microsecond)
				return i, nil
			})
		}
		p.Close()
	}()
	next := 0
	for r := range p.Results() {
		if r.Index != next || r.Value != next {
			t.Fatalf("stream out of order: got index %d value %d, want %d", r.Index, r.Value, next)
		}
		next++
	}
	if next != n {
		t.Fatalf("stream delivered %d results, want %d", next, n)
	}
}

// TestPanicIsolation: a panicking job fails alone; the sweep completes.
func TestPanicIsolation(t *testing.T) {
	results := Map(10, Options{Jobs: 4}, func(i int) (int, error) {
		if i == 3 {
			panic("kernel blew up")
		}
		return i, nil
	})
	for i, r := range results {
		if i == 3 {
			var pe *PanicError
			if !errors.As(r.Err, &pe) {
				t.Fatalf("job 3: err = %v, want PanicError", r.Err)
			}
			if pe.Index != 3 || fmt.Sprint(pe.Value) != "kernel blew up" || len(pe.Stack) == 0 {
				t.Fatalf("PanicError = {Index:%d Value:%v stack:%dB}", pe.Index, pe.Value, len(pe.Stack))
			}
			continue
		}
		if r.Err != nil || r.Value != i {
			t.Fatalf("job %d: value %d err %v", i, r.Value, r.Err)
		}
	}
}

// TestWatchdog: a hung job becomes a TimeoutError; others are unaffected.
func TestWatchdog(t *testing.T) {
	hung := make(chan struct{})
	defer close(hung)
	results := Map(4, Options{Jobs: 4, Timeout: 50 * time.Millisecond}, func(i int) (int, error) {
		if i == 1 {
			<-hung // never within the watchdog
		}
		return i, nil
	})
	if !errors.Is(results[1].Err, ErrTimeout) {
		t.Fatalf("job 1: err = %v, want ErrTimeout", results[1].Err)
	}
	var te *TimeoutError
	if !errors.As(results[1].Err, &te) || te.Index != 1 {
		t.Fatalf("job 1: err = %#v, want TimeoutError{Index:1}", results[1].Err)
	}
	for _, i := range []int{0, 2, 3} {
		if results[i].Err != nil || results[i].Value != i {
			t.Fatalf("job %d: value %d err %v", i, results[i].Value, results[i].Err)
		}
	}
}

// TestBoundedWorkers: concurrency never exceeds Options.Jobs.
func TestBoundedWorkers(t *testing.T) {
	const limit = 3
	var inFlight, peak int64
	Map(30, Options{Jobs: limit}, func(i int) (struct{}, error) {
		cur := atomic.AddInt64(&inFlight, 1)
		for {
			old := atomic.LoadInt64(&peak)
			if cur <= old || atomic.CompareAndSwapInt64(&peak, old, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt64(&inFlight, -1)
		return struct{}{}, nil
	})
	if p := atomic.LoadInt64(&peak); p > limit {
		t.Fatalf("observed %d concurrent jobs, limit %d", p, limit)
	}
}

// TestSequentialIsStrictlyOrdered: Jobs=1 runs jobs one at a time in
// submission order (the degenerate sequential mode every consumer's
// -jobs 1 maps to).
func TestSequentialIsStrictlyOrdered(t *testing.T) {
	var order []int
	results := Map(10, Options{Jobs: 1}, func(i int) (int, error) {
		order = append(order, i) // safe: single worker
		return i, nil
	})
	if err := FirstErr(results); err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("execution order %v not sequential", order)
		}
	}
}

// TestRetryRequeuesPanickedJob: with Retry=1 a job whose worker panics is
// re-dispatched exactly once, delivers its value, and is flagged via
// Attempts — the campaign server's worker-loss contract (a lost cell is
// requeued once and flagged in the receipt, never silently dropped).
func TestRetryRequeuesPanickedJob(t *testing.T) {
	var calls [4]int64
	results := Map(4, Options{Jobs: 2, Retry: 1}, func(i int) (int, error) {
		n := atomic.AddInt64(&calls[i], 1)
		if i == 2 && n == 1 {
			panic("worker lost")
		}
		return i, nil
	})
	for i, r := range results {
		wantAttempts := 1
		if i == 2 {
			wantAttempts = 2
		}
		if r.Err != nil || r.Value != i || r.Attempts != wantAttempts {
			t.Fatalf("job %d: value %d attempts %d err %v, want value %d attempts %d",
				i, r.Value, r.Attempts, r.Err, i, wantAttempts)
		}
		if got := atomic.LoadInt64(&calls[i]); got != int64(wantAttempts) {
			t.Fatalf("job %d executed %d times, want %d", i, got, wantAttempts)
		}
	}
}

// TestRetryExhausted: a job that panics on every dispatch is executed
// exactly Retry+1 times and then delivers its PanicError with the full
// dispatch count — requeued exactly once at Retry=1, never more.
func TestRetryExhausted(t *testing.T) {
	var calls int64
	results := Map(1, Options{Jobs: 1, Retry: 1}, func(i int) (int, error) {
		atomic.AddInt64(&calls, 1)
		panic("always lost")
	})
	var pe *PanicError
	if !errors.As(results[0].Err, &pe) {
		t.Fatalf("err = %v, want PanicError", results[0].Err)
	}
	if got := atomic.LoadInt64(&calls); got != 2 {
		t.Fatalf("job executed %d times, want exactly 2 (requeued exactly once)", got)
	}
	if results[0].Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2", results[0].Attempts)
	}
}

// TestRetryIgnoresPlainErrors: an error returned by the job is an
// application result, not a worker loss — never retried.
func TestRetryIgnoresPlainErrors(t *testing.T) {
	var calls int64
	boom := errors.New("boom")
	results := Map(1, Options{Jobs: 1, Retry: 3}, func(i int) (int, error) {
		atomic.AddInt64(&calls, 1)
		return 0, boom
	})
	if !errors.Is(results[0].Err, boom) || results[0].Attempts != 1 {
		t.Fatalf("err %v attempts %d, want boom after 1 attempt", results[0].Err, results[0].Attempts)
	}
	if got := atomic.LoadInt64(&calls); got != 1 {
		t.Fatalf("job executed %d times, want 1", got)
	}
}

// TestRetryTimeout: a watchdog expiry is a worker loss too — the job is
// re-dispatched and can succeed on its second lease.
func TestRetryTimeout(t *testing.T) {
	hung := make(chan struct{})
	defer close(hung)
	var calls int64
	results := Map(1, Options{Jobs: 1, Timeout: 30 * time.Millisecond, Retry: 1}, func(i int) (int, error) {
		if atomic.AddInt64(&calls, 1) == 1 {
			<-hung // first lease never returns within the watchdog
		}
		return 7, nil
	})
	if results[0].Err != nil || results[0].Value != 7 || results[0].Attempts != 2 {
		t.Fatalf("result = {v:%d attempts:%d err:%v}, want {7 2 nil}",
			results[0].Value, results[0].Attempts, results[0].Err)
	}
}

// TestRetryDefaultOff: the zero Options never retries — existing callers
// keep fail-fast semantics.
func TestRetryDefaultOff(t *testing.T) {
	var calls int64
	results := Map(1, Options{Jobs: 1}, func(i int) (int, error) {
		atomic.AddInt64(&calls, 1)
		panic("lost")
	})
	var pe *PanicError
	if !errors.As(results[0].Err, &pe) || atomic.LoadInt64(&calls) != 1 || results[0].Attempts != 1 {
		t.Fatalf("calls %d attempts %d err %v, want 1 execution and PanicError",
			atomic.LoadInt64(&calls), results[0].Attempts, results[0].Err)
	}
}

func TestMapEmptyAndErrors(t *testing.T) {
	if got := Map(0, Options{}, func(i int) (int, error) { return 0, nil }); len(got) != 0 {
		t.Fatalf("Map(0) returned %d results", len(got))
	}
	boom := errors.New("boom")
	results := Map(3, Options{Jobs: 2}, func(i int) (int, error) {
		if i == 2 {
			return 0, boom
		}
		return i, nil
	})
	if err := FirstErr(results); !errors.Is(err, boom) {
		t.Fatalf("FirstErr = %v, want boom", err)
	}
}
