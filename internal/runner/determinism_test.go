package runner_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/runner"
	"repro/internal/taskset"
)

// TestConcurrentKernelsAreIndependent is the contract test for the whole
// batch-run design: N kernels simulating the same task set in different
// goroutines must not observe each other. Every parallel run's serialized
// trace and statistics must be byte-identical to a sequential reference
// run. Run it under -race: any latent shared state between kernels shows
// up either as a race report or as diverging output.
func TestConcurrentKernelsAreIndependent(t *testing.T) {
	set := func() *taskset.Set {
		return &taskset.Set{
			Policy:    "rm",
			TimeModel: "segmented",
			HorizonMs: 20,
			Tasks: []taskset.Task{
				{Name: "ctrl", Type: "periodic", PeriodUs: 1000, WcetUs: 250},
				{Name: "audio", Type: "periodic", PeriodUs: 4000, WcetUs: 1500},
				{Name: "video", Type: "periodic", PeriodUs: 8000, WcetUs: 3000},
				{Name: "init", Type: "aperiodic", StartUs: 50, ComputeUs: []int64{100, 100}},
			},
		}
	}
	serialize := func() ([]byte, error) {
		res, err := taskset.Run(set())
		if err != nil {
			return nil, err
		}
		var b bytes.Buffer
		fmt.Fprintf(&b, "end=%v stats=%+v\n", res.End, res.Stats)
		for _, tr := range res.Tasks {
			fmt.Fprintf(&b, "%+v\n", tr)
		}
		if err := res.Trace.VCD(&b); err != nil {
			return nil, err
		}
		return b.Bytes(), nil
	}

	want, err := serialize()
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	results := runner.Map(n, runner.Options{Jobs: 8}, func(i int) ([]byte, error) {
		return serialize()
	})
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("parallel run %d: %v", r.Index, r.Err)
		}
		if !bytes.Equal(r.Value, want) {
			t.Errorf("parallel run %d diverged from the sequential reference:\nwant %d bytes\ngot  %d bytes",
				r.Index, len(want), len(r.Value))
		}
	}
}
