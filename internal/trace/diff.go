package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// MarkerDiff compares the instrumentation milestones of two traces —
// typically the unscheduled specification model against the refined
// architecture model — pairing markers by (label, arg). It reports, per
// milestone, when each model reached it and the drift introduced by
// serialization and scheduling. Milestones present in only one trace are
// skipped.
type MarkerDiff struct {
	Label string
	Arg   int64
	A, B  sim.Time
	Delta sim.Time // B - A
}

// DiffMarkers computes the milestone comparison between two traces, in
// order of A's timestamps. For repeated (label, arg) pairs, occurrences
// are matched positionally.
func DiffMarkers(a, b *Recorder) []MarkerDiff {
	type key struct {
		label string
		arg   int64
	}
	collect := func(r *Recorder) map[key][]sim.Time {
		m := map[key][]sim.Time{}
		for _, rec := range r.recs {
			if rec.Kind == KindMarker {
				k := key{rec.Label, rec.Arg}
				m[k] = append(m[k], rec.At)
			}
		}
		return m
	}
	ma, mb := collect(a), collect(b)
	var out []MarkerDiff
	for k, atimes := range ma {
		btimes, ok := mb[k]
		if !ok {
			continue
		}
		n := len(atimes)
		if len(btimes) < n {
			n = len(btimes)
		}
		for i := 0; i < n; i++ {
			out = append(out, MarkerDiff{
				Label: k.label, Arg: k.arg,
				A: atimes[i], B: btimes[i], Delta: btimes[i] - atimes[i],
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// WriteMarkerDiff renders the comparison as a table with the two trace
// names as column headers.
func WriteMarkerDiff(w io.Writer, a, b *Recorder) error {
	diffs := DiffMarkers(a, b)
	if _, err := fmt.Fprintf(w, "%-16s %6s %14s %14s %12s\n",
		"milestone", "arg", a.Name(), b.Name(), "delta"); err != nil {
		return err
	}
	for _, d := range diffs {
		if _, err := fmt.Fprintf(w, "%-16s %6d %14v %14v %+12d\n",
			d.Label, d.Arg, d.A, d.B, int64(d.Delta)); err != nil {
			return err
		}
	}
	return nil
}
