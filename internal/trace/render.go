package trace

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/sim"
)

// GanttOptions configures ASCII Gantt rendering.
type GanttOptions struct {
	// From/To bound the rendered time range; To = 0 means trace end.
	From, To sim.Time
	// Width is the number of character columns (default 72).
	Width int
	// Tasks restricts and orders the rows; nil renders all tasks sorted.
	Tasks []string
}

// Gantt renders the execution intervals of the trace's tasks as an ASCII
// chart, one row per task, '#' marking modeled execution — the textual
// equivalent of the paper's Figure 8 timing diagrams.
func (r *Recorder) Gantt(w io.Writer, opts GanttOptions) error {
	width := opts.Width
	if width <= 0 {
		width = 72
	}
	to := opts.To
	if to == 0 {
		to = r.End()
	}
	if to <= opts.From {
		_, err := fmt.Fprintln(w, "(empty trace)")
		return err
	}
	tasks := opts.Tasks
	if tasks == nil {
		tasks = r.Tasks()
	}
	span := to - opts.From
	nameW := 8
	for _, t := range tasks {
		if len(t) > nameW {
			nameW = len(t)
		}
	}
	for _, task := range tasks {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, iv := range r.ExecIntervals(task) {
			if iv.End <= opts.From || iv.Start >= to {
				continue
			}
			lo := int((maxT(iv.Start, opts.From) - opts.From) * sim.Time(width) / span)
			hi := int((minT(iv.End, to) - opts.From) * sim.Time(width) / span)
			if hi == lo && hi < width {
				hi = lo + 1 // make zero-width slivers visible
			}
			for i := lo; i < hi && i < width; i++ {
				row[i] = '#'
			}
		}
		if _, err := fmt.Fprintf(w, "%-*s |%s|\n", nameW, task, row); err != nil {
			return err
		}
	}
	// Time axis.
	axis := fmt.Sprintf("%-*s  %v%s%v", nameW, "", opts.From,
		strings.Repeat(" ", max(1, width-len(opts.From.String())-len(to.String()))), to)
	_, err := fmt.Fprintln(w, axis)
	return err
}

// EventList writes every record as one line — the event-by-event view of
// Figure 8.
func (r *Recorder) EventList(w io.Writer) error {
	for _, rec := range r.recs {
		if _, err := fmt.Fprintln(w, rec.String()); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes the records as comma-separated values with a header row,
// suitable for external plotting.
func (r *Recorder) CSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "at,kind,task,from,to,label,arg"); err != nil {
		return err
	}
	for _, rec := range r.recs {
		if _, err := fmt.Fprintf(w, "%d,%s,%s,%s,%s,%s,%d\n",
			int64(rec.At), rec.Kind, rec.Task, rec.From, rec.To, rec.Label, rec.Arg); err != nil {
			return err
		}
	}
	return nil
}
