package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestDiffMarkers(t *testing.T) {
	a := New("spec")
	b := New("arch")
	a.Marker(100, "frame-out", "", 0)
	a.Marker(200, "frame-out", "", 1)
	a.Marker(50, "start", "", 0)
	b.Marker(150, "frame-out", "", 0)
	b.Marker(290, "frame-out", "", 1)
	b.Marker(50, "start", "", 0)
	b.Marker(999, "only-in-b", "", 0)

	diffs := DiffMarkers(a, b)
	if len(diffs) != 3 {
		t.Fatalf("diffs = %d, want 3 (unmatched milestones dropped)", len(diffs))
	}
	// Ordered by A's times: start@50, frame-out@100, frame-out@200.
	if diffs[0].Label != "start" || diffs[0].Delta != 0 {
		t.Errorf("diffs[0] = %+v", diffs[0])
	}
	if diffs[1].Label != "frame-out" || diffs[1].Delta != 50 {
		t.Errorf("diffs[1] = %+v", diffs[1])
	}
	if diffs[2].Arg != 1 || diffs[2].Delta != 90 {
		t.Errorf("diffs[2] = %+v", diffs[2])
	}
}

func TestDiffMarkersPositionalRepeats(t *testing.T) {
	a := New("a")
	b := New("b")
	for _, at := range []sim.Time{10, 20, 30} {
		a.Marker(at, "tick", "", 7)
	}
	for _, at := range []sim.Time{12, 25} { // one fewer occurrence
		b.Marker(at, "tick", "", 7)
	}
	diffs := DiffMarkers(a, b)
	if len(diffs) != 2 {
		t.Fatalf("diffs = %d, want 2 (positional matching)", len(diffs))
	}
	if diffs[0].Delta != 2 || diffs[1].Delta != 5 {
		t.Errorf("deltas = %v, %v", diffs[0].Delta, diffs[1].Delta)
	}
}

func TestWriteMarkerDiff(t *testing.T) {
	a := New("spec")
	b := New("arch")
	a.Marker(100, "out", "", 0)
	b.Marker(160, "out", "", 0)
	var sb strings.Builder
	if err := WriteMarkerDiff(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"spec", "arch", "out", "+60"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff table missing %q:\n%s", want, out)
		}
	}
}
