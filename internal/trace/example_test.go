package trace_test

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Attach a recorder to an RTOS model instance, simulate, and render the
// schedule as an ASCII Gantt chart (the textual Figure 8).
func ExampleRecorder_Gantt() {
	k := sim.NewKernel()
	rtos := core.New(k, "CPU", core.PriorityPolicy{})
	rec := trace.New("demo")
	rec.Attach(rtos)

	mk := func(name string, prio int, work sim.Time) {
		task := rtos.TaskCreate(name, core.Aperiodic, 0, work, prio)
		k.Spawn(name, func(p *sim.Proc) {
			rtos.TaskActivate(p, task)
			rtos.TimeWait(p, work)
			rtos.TaskTerminate(p)
		})
	}
	mk("hi", 1, 30)
	mk("lo", 2, 30)
	rtos.Start(nil)
	if err := k.Run(); err != nil {
		fmt.Println("error:", err)
	}
	rec.Gantt(os.Stdout, trace.GanttOptions{Width: 20, Tasks: []string{"hi", "lo"}})
	fmt.Printf("context switches: %d\n", rec.ContextSwitches())
	// Output:
	// hi       |##########..........|
	// lo       |..........##########|
	//           0ns             60ns
	// context switches: 1
}
