package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// Mean returns the arithmetic mean of the samples (0 for none).
func Mean(xs []sim.Time) sim.Time {
	if len(xs) == 0 {
		return 0
	}
	var sum sim.Time
	for _, x := range xs {
		sum += x
	}
	return sum / sim.Time(len(xs))
}

// MinMax returns the smallest and largest sample (0,0 for none).
func MinMax(xs []sim.Time) (min, max sim.Time) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of the samples using the
// nearest-rank method on a sorted copy.
func Percentile(xs []sim.Time, p float64) sim.Time {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	sorted := append([]sim.Time(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// TaskSummary aggregates one task's trace activity.
type TaskSummary struct {
	Task        string
	Busy        sim.Time
	BusyPct     float64 // of the trace span
	Segments    int     // execution intervals
	MeanResp    sim.Time
	MaxResp     sim.Time
	Dispatches  int
	Preemptions int // transitions running -> ready
}

// Summarize computes per-task summaries over the whole trace.
func (r *Recorder) Summarize() []TaskSummary {
	span := r.End()
	var out []TaskSummary
	for _, task := range r.Tasks() {
		ivs := r.ExecIntervals(task)
		var busy sim.Time
		for _, iv := range ivs {
			busy += iv.Duration()
		}
		resp := r.ResponseTimes(task)
		_, maxResp := MinMax(resp)
		s := TaskSummary{
			Task:     task,
			Busy:     busy,
			Segments: len(ivs),
			MeanResp: Mean(resp),
			MaxResp:  maxResp,
		}
		if span > 0 {
			s.BusyPct = 100 * float64(busy) / float64(span)
		}
		for _, rec := range r.recs {
			switch {
			case rec.Kind == KindDispatch && rec.To == task:
				s.Dispatches++
			case rec.Kind == KindTaskState && rec.Task == task &&
				rec.From == "running" && rec.To == "ready":
				s.Preemptions++
			}
		}
		out = append(out, s)
	}
	return out
}

// Report writes a per-task summary table followed by the global counters —
// the textual companion to the Gantt chart.
func (r *Recorder) Report(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-14s %12s %7s %6s %12s %12s %6s %6s\n",
		"task", "busy", "busy%", "segs", "meanResp", "maxResp", "disp", "preempt"); err != nil {
		return err
	}
	for _, s := range r.Summarize() {
		if _, err := fmt.Fprintf(w, "%-14s %12v %6.1f%% %6d %12v %12v %6d %6d\n",
			s.Task, s.Busy, s.BusyPct, s.Segments, s.MeanResp, s.MaxResp,
			s.Dispatches, s.Preemptions); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "\nspan %v, context switches %d, records %d\n",
		r.End(), r.ContextSwitches(), r.Len())
	return err
}
