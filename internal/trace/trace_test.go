package trace

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func TestExecIntervalsFromSegments(t *testing.T) {
	r := New("spec")
	r.SegBegin(0, "B2")
	r.SegEnd(10, "B2")
	r.SegBegin(10, "B2") // touching: must merge
	r.SegEnd(25, "B2")
	r.SegBegin(40, "B2")
	r.SegEnd(50, "B2")
	ivs := r.ExecIntervals("B2")
	want := []Interval{{0, 25}, {40, 50}}
	if len(ivs) != len(want) {
		t.Fatalf("intervals = %v, want %v", ivs, want)
	}
	for i := range want {
		if ivs[i] != want[i] {
			t.Errorf("interval %d = %v, want %v", i, ivs[i], want[i])
		}
	}
	if bt := r.BusyTime("B2"); bt != 35 {
		t.Errorf("busy time = %v, want 35", bt)
	}
}

func TestExecIntervalsFromTaskStates(t *testing.T) {
	r := New("arch")
	add := func(at sim.Time, task, from, to string) {
		r.Append(Record{At: at, Kind: KindTaskState, Task: task, From: from, To: to})
	}
	add(0, "T", "created", "ready")
	add(5, "T", "ready", "running")
	add(5, "T", "running", "delay") // running->delay: still active
	add(20, "T", "delay", "running")
	add(20, "T", "running", "wait-event")
	add(60, "T", "wait-event", "ready")
	add(65, "T", "ready", "running")
	add(80, "T", "running", "terminated")
	ivs := r.ExecIntervals("T")
	want := []Interval{{5, 20}, {65, 80}}
	if len(ivs) != 2 || ivs[0] != want[0] || ivs[1] != want[1] {
		t.Errorf("intervals = %v, want %v", ivs, want)
	}
}

func TestOpenIntervalClosedAtTraceEnd(t *testing.T) {
	r := New("x")
	r.SegBegin(10, "A")
	r.Marker(90, "tick", "", 0)
	ivs := r.ExecIntervals("A")
	if len(ivs) != 1 || ivs[0] != (Interval{10, 90}) {
		t.Errorf("intervals = %v, want [{10 90}]", ivs)
	}
}

func TestContextSwitches(t *testing.T) {
	r := New("arch")
	d := func(at sim.Time, from, to string) {
		r.Append(Record{At: at, Kind: KindDispatch, From: from, To: to})
	}
	d(0, "-", "A")  // first dispatch: not a switch
	d(10, "A", "B") // switch 1
	d(20, "B", "-") // idle: not a switch
	d(30, "-", "B") // same task resumes: not a switch
	d(40, "B", "A") // switch 2
	if n := r.ContextSwitches(); n != 2 {
		t.Errorf("context switches = %d, want 2", n)
	}
}

func TestLatencies(t *testing.T) {
	r := New("x")
	r.Marker(0, "in", "", 0)
	r.Marker(100, "in", "", 1)
	r.Marker(30, "out", "", 0)
	r.Marker(180, "out", "", 1)
	r.Marker(200, "in", "", 2) // no matching out: dropped
	lats := r.Latencies("in", "out")
	if len(lats) != 2 || lats[0] != 30 || lats[1] != 80 {
		t.Errorf("latencies = %v, want [30 80]", lats)
	}
}

func TestLatenciesIgnoreEarlierOut(t *testing.T) {
	r := New("x")
	r.Marker(50, "out", "", 7) // stale out before in
	r.Marker(60, "in", "", 7)
	r.Marker(90, "out", "", 7)
	lats := r.Latencies("in", "out")
	if len(lats) != 1 || lats[0] != 30 {
		t.Errorf("latencies = %v, want [30]", lats)
	}
}

func TestResponseTimes(t *testing.T) {
	r := New("arch")
	add := func(at sim.Time, to string) {
		r.Append(Record{At: at, Kind: KindTaskState, Task: "T", From: "x", To: to})
	}
	add(0, "ready")
	add(5, "running")
	add(20, "wait-event")
	add(100, "ready")
	add(130, "running")
	rts := r.ResponseTimes("T")
	if len(rts) != 2 || rts[0] != 5 || rts[1] != 30 {
		t.Errorf("response times = %v, want [5 30]", rts)
	}
}

func TestOverlap(t *testing.T) {
	r := New("spec")
	r.SegBegin(0, "A")
	r.SegEnd(50, "A")
	r.SegBegin(30, "B")
	r.SegEnd(80, "B")
	if ov := r.Overlap("A", "B"); ov != 20 {
		t.Errorf("overlap = %v, want 20", ov)
	}
	if ov := r.Overlap("B", "A"); ov != 20 {
		t.Errorf("overlap (reversed) = %v, want 20", ov)
	}
}

func TestAttachRecordsRTOSActivity(t *testing.T) {
	k := sim.NewKernel()
	os := core.New(k, "PE", core.PriorityPolicy{})
	r := New("arch")
	r.Attach(os)
	a := os.TaskCreate("a", core.Aperiodic, 0, 0, 1)
	b := os.TaskCreate("b", core.Aperiodic, 0, 0, 2)
	body := func(task *core.Task, d sim.Time) sim.Func {
		return func(p *sim.Proc) {
			os.TaskActivate(p, task)
			os.TimeWait(p, d)
			os.TaskTerminate(p)
		}
	}
	k.Spawn("a", body(a, 30))
	k.Spawn("b", body(b, 20))
	os.Start(nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Serialized execution: no overlap, busy times preserved.
	if ov := r.Overlap("a", "b"); ov != 0 {
		t.Errorf("overlap = %v, want 0 (serialized)", ov)
	}
	if bt := r.BusyTime("a"); bt != 30 {
		t.Errorf("busy(a) = %v, want 30", bt)
	}
	if bt := r.BusyTime("b"); bt != 20 {
		t.Errorf("busy(b) = %v, want 20", bt)
	}
	if cs := r.ContextSwitches(); cs != 1 {
		t.Errorf("context switches = %d, want 1", cs)
	}
	if got := r.Tasks(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("tasks = %v, want [a b]", got)
	}
}

func TestGanttRendering(t *testing.T) {
	r := New("spec")
	r.SegBegin(0, "A")
	r.SegEnd(50, "A")
	r.SegBegin(50, "B")
	r.SegEnd(100, "B")
	var sb strings.Builder
	if err := r.Gantt(&sb, GanttOptions{Width: 10}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("gantt lines = %d, want 3:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "A") || !strings.Contains(lines[0], "#####.....") {
		t.Errorf("row A = %q", lines[0])
	}
	if !strings.Contains(lines[1], "B") || !strings.Contains(lines[1], ".....#####") {
		t.Errorf("row B = %q", lines[1])
	}
}

func TestGanttEmptyTrace(t *testing.T) {
	r := New("empty")
	var sb strings.Builder
	if err := r.Gantt(&sb, GanttOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "empty") {
		t.Errorf("empty gantt output = %q", sb.String())
	}
}

func TestEventListAndCSV(t *testing.T) {
	r := New("x")
	r.Append(Record{At: 5, Kind: KindDispatch, From: "-", To: "A"})
	r.Append(Record{At: 7, Kind: KindIRQ, Label: "irq0", Arg: 1})
	r.Marker(9, "m", "A", 3)
	var ev strings.Builder
	if err := r.EventList(&ev); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"dispatch - -> A", "irq0 enter", "marker   m A arg=3"} {
		if !strings.Contains(ev.String(), want) {
			t.Errorf("event list missing %q:\n%s", want, ev.String())
		}
	}
	var csv strings.Builder
	if err := r.CSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv lines = %d, want 4", len(lines))
	}
	if lines[0] != "at,kind,task,from,to,label,arg" {
		t.Errorf("csv header = %q", lines[0])
	}
	if lines[1] != "5,dispatch,,-,A,,0" {
		t.Errorf("csv row = %q", lines[1])
	}
}

func TestMarkerTimes(t *testing.T) {
	r := New("x")
	r.Marker(1, "a", "", 0)
	r.Marker(5, "b", "", 0)
	r.Marker(9, "a", "", 1)
	got := r.MarkerTimes("a")
	if len(got) != 2 || got[0] != 1 || got[1] != 9 {
		t.Errorf("marker times = %v, want [1 9]", got)
	}
}

func TestRecordStrings(t *testing.T) {
	kinds := []Kind{KindTaskState, KindDispatch, KindIRQ, KindMarker, KindSegBegin, KindSegEnd}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("kind %d has empty string", int(k))
		}
		rec := Record{At: 1, Kind: k, Task: "t", From: "f", To: "g", Label: "l"}
		if rec.String() == "" {
			t.Errorf("record of kind %v renders empty", k)
		}
	}
}
