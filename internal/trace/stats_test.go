package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestMean(t *testing.T) {
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %v", m)
	}
	if m := Mean([]sim.Time{10, 20, 30}); m != 20 {
		t.Errorf("Mean = %v, want 20", m)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]sim.Time{5, 1, 9, 3})
	if min != 1 || max != 9 {
		t.Errorf("MinMax = %v,%v, want 1,9", min, max)
	}
	min, max = MinMax(nil)
	if min != 0 || max != 0 {
		t.Errorf("MinMax(nil) = %v,%v", min, max)
	}
}

func TestPercentile(t *testing.T) {
	xs := []sim.Time{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		p    float64
		want sim.Time
	}{
		{0, 10},
		{0.5, 50},
		{0.95, 100},
		{1, 100},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("P%.0f = %v, want %v", 100*c.p, got, c.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("Percentile(nil) != 0")
	}
}

// TestQuickPercentileBounds: any percentile lies within [min, max] and is
// one of the samples; the input slice is never mutated.
func TestQuickPercentileBounds(t *testing.T) {
	f := func(raw []uint16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]sim.Time, len(raw))
		orig := make([]sim.Time, len(raw))
		for i, v := range raw {
			xs[i] = sim.Time(v)
			orig[i] = sim.Time(v)
		}
		p := float64(pRaw) / 255
		got := Percentile(xs, p)
		min, max := MinMax(xs)
		if got < min || got > max {
			return false
		}
		found := false
		for i, x := range xs {
			if x == got {
				found = true
			}
			if x != orig[i] {
				return false // mutated input
			}
		}
		return found
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSummarizeAndReport(t *testing.T) {
	r := New("pe")
	add := func(at sim.Time, task, from, to string) {
		r.Append(Record{At: at, Kind: KindTaskState, Task: task, From: from, To: to})
	}
	disp := func(at sim.Time, from, to string) {
		r.Append(Record{At: at, Kind: KindDispatch, From: from, To: to})
	}
	add(0, "A", "created", "ready")
	disp(0, "-", "A")
	add(0, "A", "ready", "running")
	add(0, "A", "running", "delay")
	add(60, "A", "delay", "running")
	add(60, "A", "running", "ready") // preempted
	disp(60, "A", "B")
	add(60, "B", "created", "running")
	add(60, "B", "running", "delay")
	add(100, "B", "delay", "running")
	add(100, "B", "running", "terminated")
	disp(100, "B", "A")
	add(100, "A", "ready", "running")
	add(100, "A", "running", "terminated")

	sums := r.Summarize()
	byTask := map[string]TaskSummary{}
	for _, s := range sums {
		byTask[s.Task] = s
	}
	if byTask["A"].Busy != 60 {
		t.Errorf("A busy = %v, want 60", byTask["A"].Busy)
	}
	if byTask["B"].Busy != 40 {
		t.Errorf("B busy = %v, want 40", byTask["B"].Busy)
	}
	if byTask["A"].Preemptions != 1 {
		t.Errorf("A preemptions = %d, want 1", byTask["A"].Preemptions)
	}
	if byTask["A"].Dispatches != 2 {
		t.Errorf("A dispatches = %d, want 2", byTask["A"].Dispatches)
	}
	if byTask["A"].BusyPct < 59 || byTask["A"].BusyPct > 61 {
		t.Errorf("A busy%% = %.1f, want 60", byTask["A"].BusyPct)
	}

	var sb strings.Builder
	if err := r.Report(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"task", "A", "B", "context switches 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
