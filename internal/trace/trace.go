// Package trace records and analyzes simulation activity of both the
// unscheduled specification model and the RTOS-based architecture model.
// It regenerates the paper's Figure 8 (simulation traces of the example
// design before and after dynamic-scheduling refinement) as event lists
// and ASCII Gantt charts, and computes the metrics Table 1 reports
// (context switches, latencies such as the vocoder's transcoding delay).
package trace

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Kind classifies a trace record.
type Kind int

const (
	// KindTaskState: an RTOS task changed state (From/To hold state names).
	KindTaskState Kind = iota
	// KindDispatch: the CPU was handed over (From/To hold task names, "-"
	// for idle).
	KindDispatch
	// KindIRQ: interrupt entry/exit (Label holds the IRQ name, Arg is 1 on
	// entry and 0 on return).
	KindIRQ
	// KindMarker: a user-defined instrumentation point (Label, Task, Arg).
	KindMarker
	// KindSegBegin / KindSegEnd: an execution segment of a behavior in the
	// unscheduled model (Task holds the behavior name).
	KindSegBegin
	KindSegEnd
)

// String returns a short record-kind name.
func (k Kind) String() string {
	switch k {
	case KindTaskState:
		return "state"
	case KindDispatch:
		return "dispatch"
	case KindIRQ:
		return "irq"
	case KindMarker:
		return "marker"
	case KindSegBegin:
		return "seg-begin"
	case KindSegEnd:
		return "seg-end"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Record is one timestamped trace entry.
type Record struct {
	At    sim.Time
	Kind  Kind
	Task  string // task/behavior the record concerns ("" if none)
	From  string // previous state / previous task
	To    string // new state / next task
	Label string // marker label or IRQ name
	Arg   int64  // free-form argument (frame number, enter flag, ...)
}

// String renders the record as one event-list line.
func (r Record) String() string {
	switch r.Kind {
	case KindTaskState:
		return fmt.Sprintf("%-10s state    %s: %s -> %s", r.At, r.Task, r.From, r.To)
	case KindDispatch:
		return fmt.Sprintf("%-10s dispatch %s -> %s", r.At, r.From, r.To)
	case KindIRQ:
		dir := "return"
		if r.Arg == 1 {
			dir = "enter"
		}
		return fmt.Sprintf("%-10s irq      %s %s", r.At, r.Label, dir)
	case KindMarker:
		return fmt.Sprintf("%-10s marker   %s %s arg=%d", r.At, r.Label, r.Task, r.Arg)
	case KindSegBegin:
		return fmt.Sprintf("%-10s exec     %s begins", r.At, r.Task)
	case KindSegEnd:
		return fmt.Sprintf("%-10s exec     %s ends", r.At, r.Task)
	default:
		return fmt.Sprintf("%-10s %s", r.At, r.Kind)
	}
}

// MarkerSink receives a copy of every marker recorded on a Recorder
// (telemetry.Bus implements it).
type MarkerSink interface {
	Marker(at sim.Time, label, task string, arg int64)
}

// Recorder accumulates trace records. It is not safe for use outside the
// single-threaded simulation.
type Recorder struct {
	name string
	recs []Record
	tees []MarkerSink
}

// New creates an empty recorder.
func New(name string) *Recorder { return &Recorder{name: name} }

// Name returns the recorder's name.
func (r *Recorder) Name() string { return r.name }

// Records returns all records in chronological (append) order.
func (r *Recorder) Records() []Record { return r.recs }

// Len returns the number of records.
func (r *Recorder) Len() int { return len(r.recs) }

// Append adds an arbitrary record.
func (r *Recorder) Append(rec Record) { r.recs = append(r.recs, rec) }

// Marker records an instrumentation point and forwards it to any teed
// sinks.
func (r *Recorder) Marker(at sim.Time, label, task string, arg int64) {
	r.Append(Record{At: at, Kind: KindMarker, Task: task, Label: label, Arg: arg})
	for _, s := range r.tees {
		s.Marker(at, label, task, arg)
	}
}

// TeeMarkers forwards every future marker to s as well, so instrumented
// models need a single Marker call site to feed both the recorder and a
// telemetry bus.
func (r *Recorder) TeeMarkers(s MarkerSink) { r.tees = append(r.tees, s) }

// SegBegin records the start of an execution segment of a behavior in the
// unscheduled model.
func (r *Recorder) SegBegin(at sim.Time, task string) {
	r.Append(Record{At: at, Kind: KindSegBegin, Task: task})
}

// SegEnd records the end of an execution segment.
func (r *Recorder) SegEnd(at sim.Time, task string) {
	r.Append(Record{At: at, Kind: KindSegEnd, Task: task})
}

// Attach subscribes the recorder to an RTOS model instance, recording all
// task state changes, dispatches and IRQs.
func (r *Recorder) Attach(os *core.OS) {
	os.Observe(&osAdapter{r: r})
}

// osAdapter converts core.Observer callbacks into records.
type osAdapter struct {
	r *Recorder
}

func (a *osAdapter) OnTaskState(at sim.Time, t *core.Task, old, new core.TaskState) {
	a.r.Append(Record{At: at, Kind: KindTaskState, Task: t.Name(),
		From: old.String(), To: new.String()})
}

func (a *osAdapter) OnDispatch(at sim.Time, prev, next *core.Task) {
	name := func(t *core.Task) string {
		if t == nil {
			return "-"
		}
		return t.Name()
	}
	a.r.Append(Record{At: at, Kind: KindDispatch, From: name(prev), To: name(next)})
}

func (a *osAdapter) OnIRQ(at sim.Time, name string, enter bool) {
	arg := int64(0)
	if enter {
		arg = 1
	}
	a.r.Append(Record{At: at, Kind: KindIRQ, Label: name, Arg: arg})
}
