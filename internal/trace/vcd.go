package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// VCD writes the trace as a Value Change Dump file (IEEE 1364), the
// standard waveform interchange format of EDA tooling, so schedules can
// be inspected in GTKWave and friends alongside RTL signals. Each task or
// behavior becomes a 1-bit wire that is high while the task occupies the
// CPU (running or modeled delay); each interrupt line becomes a wire that
// pulses during ISR service.
func (r *Recorder) VCD(w io.Writer) error {
	tasks := r.Tasks()
	irqs := r.irqNames()

	// Identifier codes: printable ASCII starting at '!'.
	code := func(i int) string { return string(rune('!' + i)) }

	if _, err := fmt.Fprintf(w, "$timescale 1ns $end\n$scope module %s $end\n", ident(r.name)); err != nil {
		return err
	}
	for i, t := range tasks {
		if _, err := fmt.Fprintf(w, "$var wire 1 %s %s $end\n", code(i), ident(t)); err != nil {
			return err
		}
	}
	for i, irq := range irqs {
		if _, err := fmt.Fprintf(w, "$var wire 1 %s %s $end\n", code(len(tasks)+i), ident(irq)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprint(w, "$upscope $end\n$enddefinitions $end\n"); err != nil {
		return err
	}

	// Collect value changes: (time, code, value).
	type change struct {
		at   sim.Time
		code string
		val  byte
		seq  int
	}
	var changes []change
	seq := 0
	add := func(at sim.Time, c string, v byte) {
		changes = append(changes, change{at, c, v, seq})
		seq++
	}
	for i, t := range tasks {
		add(0, code(i), '0')
		for _, iv := range r.ExecIntervals(t) {
			add(iv.Start, code(i), '1')
			add(iv.End, code(i), '0')
		}
	}
	for i, irq := range irqs {
		c := code(len(tasks) + i)
		add(0, c, '0')
		for _, rec := range r.recs {
			if rec.Kind == KindIRQ && rec.Label == irq {
				if rec.Arg == 1 {
					add(rec.At, c, '1')
				} else {
					add(rec.At, c, '0')
				}
			}
		}
	}
	sort.SliceStable(changes, func(i, j int) bool {
		if changes[i].at != changes[j].at {
			return changes[i].at < changes[j].at
		}
		return changes[i].seq < changes[j].seq
	})

	last := sim.Time(-1)
	for _, c := range changes {
		if c.at != last {
			if _, err := fmt.Fprintf(w, "#%d\n", int64(c.at)); err != nil {
				return err
			}
			last = c.at
		}
		if _, err := fmt.Fprintf(w, "%c%s\n", c.val, c.code); err != nil {
			return err
		}
	}
	return nil
}

// irqNames returns the sorted interrupt-line names in the trace.
func (r *Recorder) irqNames() []string {
	set := map[string]bool{}
	for _, rec := range r.recs {
		if rec.Kind == KindIRQ && rec.Label != "" {
			set[rec.Label] = true
		}
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ident sanitizes a name into a VCD identifier (no whitespace).
func ident(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '.', r == '-':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "unnamed"
	}
	return string(out)
}
