package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// VCD writes the trace as a Value Change Dump file (IEEE 1364), the
// standard waveform interchange format of EDA tooling, so schedules can
// be inspected in GTKWave and friends alongside RTL signals. Each task or
// behavior becomes a 1-bit wire that is high while the task occupies the
// CPU (running or modeled delay); each interrupt line becomes a wire that
// pulses during ISR service.
func (r *Recorder) VCD(w io.Writer) error {
	tasks := r.Tasks()
	irqs := r.irqNames()
	code := vcdID

	if _, err := fmt.Fprintf(w, "$timescale 1ns $end\n$scope module %s $end\n", ident(r.name)); err != nil {
		return err
	}
	names := newIdentSet()
	for i, t := range tasks {
		if _, err := fmt.Fprintf(w, "$var wire 1 %s %s $end\n", code(i), names.unique(t)); err != nil {
			return err
		}
	}
	for i, irq := range irqs {
		if _, err := fmt.Fprintf(w, "$var wire 1 %s %s $end\n", code(len(tasks)+i), names.unique(irq)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprint(w, "$upscope $end\n$enddefinitions $end\n"); err != nil {
		return err
	}

	// Collect value changes: (time, code, value).
	type change struct {
		at   sim.Time
		code string
		val  byte
		seq  int
	}
	var changes []change
	seq := 0
	add := func(at sim.Time, c string, v byte) {
		changes = append(changes, change{at, c, v, seq})
		seq++
	}
	for i, t := range tasks {
		add(0, code(i), '0')
		for _, iv := range r.ExecIntervals(t) {
			add(iv.Start, code(i), '1')
			add(iv.End, code(i), '0')
		}
	}
	for i, irq := range irqs {
		c := code(len(tasks) + i)
		add(0, c, '0')
		for _, rec := range r.recs {
			if rec.Kind == KindIRQ && rec.Label == irq {
				if rec.Arg == 1 {
					add(rec.At, c, '1')
				} else {
					add(rec.At, c, '0')
				}
			}
		}
	}
	sort.SliceStable(changes, func(i, j int) bool {
		if changes[i].at != changes[j].at {
			return changes[i].at < changes[j].at
		}
		return changes[i].seq < changes[j].seq
	})

	last := sim.Time(-1)
	for _, c := range changes {
		if c.at != last {
			if _, err := fmt.Fprintf(w, "#%d\n", int64(c.at)); err != nil {
				return err
			}
			last = c.at
		}
		if _, err := fmt.Fprintf(w, "%c%s\n", c.val, c.code); err != nil {
			return err
		}
	}
	return nil
}

// irqNames returns the sorted interrupt-line names in the trace.
func (r *Recorder) irqNames() []string {
	set := map[string]bool{}
	for _, rec := range r.recs {
		if rec.Kind == KindIRQ && rec.Label != "" {
			set[rec.Label] = true
		}
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// vcdID maps a signal index to a unique VCD identifier code over the
// printable ASCII alphabet '!'..'~' (94 symbols), using bijective base-94
// for indexes past the single-character range: 0..93 -> "!".."~",
// 94 -> "!!", 95 -> "!\"", ... A single-character scheme silently
// overflows into unprintable or colliding codes once a trace holds more
// than 94 tasks+IRQs, corrupting the dump for exactly the big SMP/DSE
// sweeps where a waveform is most useful.
func vcdID(i int) string {
	const base = '~' - '!' + 1
	buf := make([]byte, 0, 3)
	for ; i >= 0; i = i/base - 1 {
		buf = append(buf, byte('!'+i%base))
	}
	// Digits were emitted least-significant first.
	for l, r := 0, len(buf)-1; l < r; l, r = l+1, r-1 {
		buf[l], buf[r] = buf[r], buf[l]
	}
	return string(buf)
}

// identSet hands out sanitized signal names, de-duplicating collisions
// (distinct task names can sanitize to the same identifier: "a b" and
// "a?b" both become "a_b") with a numeric suffix so every $var in a
// scope keeps a distinct reference name.
type identSet struct{ used map[string]bool }

func newIdentSet() *identSet { return &identSet{used: map[string]bool{}} }

func (s *identSet) unique(name string) string {
	base := ident(name)
	out := base
	for n := 2; s.used[out]; n++ {
		out = fmt.Sprintf("%s_%d", base, n)
	}
	s.used[out] = true
	return out
}

// ident sanitizes a name into a VCD identifier (no whitespace).
func ident(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '.', r == '-':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "unnamed"
	}
	return string(out)
}
