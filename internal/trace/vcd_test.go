package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestVCDStructure(t *testing.T) {
	r := New("pe0")
	r.SegBegin(0, "A")
	r.SegEnd(50, "A")
	r.SegBegin(50, "B")
	r.SegEnd(100, "B")
	r.Append(Record{At: 30, Kind: KindIRQ, Label: "irq0", Arg: 1})
	r.Append(Record{At: 35, Kind: KindIRQ, Label: "irq0", Arg: 0})

	var sb strings.Builder
	if err := r.VCD(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module pe0 $end",
		"$var wire 1 ! A $end",
		"$var wire 1 \" B $end",
		"$var wire 1 # irq0 $end",
		"$enddefinitions $end",
		"#0\n",
		"#30\n",
		"#50\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	// A goes high at 0 and low at 50; B the reverse.
	idx0 := strings.Index(out, "#0\n")
	idx50 := strings.Index(out, "#50\n")
	idx100 := strings.Index(out, "#100\n")
	if idx0 < 0 || idx50 < 0 || idx100 < 0 {
		t.Fatalf("missing timestamps:\n%s", out)
	}
	seg0 := out[idx0:idx50]
	if !strings.Contains(seg0, "1!") {
		t.Errorf("A not high at t=0:\n%s", seg0)
	}
	seg50 := out[idx50:idx100]
	if !strings.Contains(seg50, "0!") || !strings.Contains(seg50, "1\"") {
		t.Errorf("handover at t=50 wrong:\n%s", seg50)
	}
}

func TestVCDChronological(t *testing.T) {
	r := New("x")
	r.SegBegin(10, "T")
	r.SegEnd(90, "T")
	var sb strings.Builder
	if err := r.VCD(&sb); err != nil {
		t.Fatal(err)
	}
	last := int64(-1)
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(line, "#") {
			var ts int64
			if _, err := fmtSscan(line[1:], &ts); err != nil {
				t.Fatalf("bad timestamp line %q", line)
			}
			if ts < last {
				t.Fatalf("timestamps not monotonic: %d after %d", ts, last)
			}
			last = ts
		}
	}
}

func fmtSscan(s string, v *int64) (int, error) {
	n := int64(0)
	if s == "" {
		return 0, errEmpty
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, errEmpty
		}
		n = n*10 + int64(c-'0')
	}
	*v = n
	return 1, nil
}

var errEmpty = &parseErr{}

type parseErr struct{}

func (*parseErr) Error() string { return "parse error" }

// TestVCDManySignals is the regression test for the identifier-code
// overflow: with a single-character code per signal, signal 94 and up
// walked past '~' into unprintable/colliding territory. 100 signals must
// yield 100 distinct codes, all made of printable ASCII '!'..'~'.
func TestVCDManySignals(t *testing.T) {
	r := New("big")
	for i := 0; i < 100; i++ {
		name := fmtName(i)
		r.SegBegin(sim100(i), name)
		r.SegEnd(sim100(i)+50, name)
	}
	var sb strings.Builder
	if err := r.VCD(&sb); err != nil {
		t.Fatal(err)
	}
	codes := map[string]string{}
	for _, line := range strings.Split(sb.String(), "\n") {
		if !strings.HasPrefix(line, "$var wire 1 ") {
			continue
		}
		fields := strings.Fields(line)
		// $var wire 1 <code> <name> $end
		if len(fields) != 6 {
			t.Fatalf("malformed $var line %q", line)
		}
		code, name := fields[3], fields[4]
		for _, c := range code {
			if c < '!' || c > '~' {
				t.Errorf("code %q for %s contains non-printable VCD character %q", code, name, c)
			}
		}
		if prev, dup := codes[code]; dup {
			t.Errorf("code %q assigned to both %s and %s", code, prev, name)
		}
		codes[code] = name
	}
	if len(codes) != 100 {
		t.Fatalf("got %d distinct codes, want 100", len(codes))
	}
}

// TestVCDIDBijective pins the multi-character extension: bijective
// base-94, single chars through 93, two chars from 94.
func TestVCDIDBijective(t *testing.T) {
	cases := []struct {
		i    int
		want string
	}{
		{0, "!"}, {1, "\""}, {93, "~"}, {94, "!!"}, {95, "!\""},
		{94 + 93, "!~"}, {94 + 94, "\"!"}, {94*94 + 94 - 1, "~~"}, {94*94 + 94, "!!!"},
	}
	for _, c := range cases {
		if got := vcdID(c.i); got != c.want {
			t.Errorf("vcdID(%d) = %q, want %q", c.i, got, c.want)
		}
	}
	seen := map[string]bool{}
	for i := 0; i < 10000; i++ {
		id := vcdID(i)
		if seen[id] {
			t.Fatalf("vcdID(%d) = %q collides", i, id)
		}
		seen[id] = true
	}
}

// TestVCDIdentCollision: two task names that sanitize identically must
// still get distinct reference names in the dump.
func TestVCDIdentCollision(t *testing.T) {
	r := New("pe")
	r.SegBegin(0, "t 1")
	r.SegEnd(10, "t 1")
	r.SegBegin(10, "t?1")
	r.SegEnd(20, "t?1")
	var sb strings.Builder
	if err := r.VCD(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, " t_1 $end") || !strings.Contains(out, " t_1_2 $end") {
		t.Errorf("colliding names not de-duplicated:\n%s", out)
	}
}

func fmtName(i int) string {
	return "task" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func sim100(i int) sim.Time { return sim.Time(i * 100) }

func TestVCDIdentSanitizes(t *testing.T) {
	if got := ident("task B2 (main)"); strings.ContainsAny(got, " ()") {
		t.Errorf("ident = %q still has forbidden characters", got)
	}
	if ident("") != "unnamed" {
		t.Errorf("empty ident = %q", ident(""))
	}
}
