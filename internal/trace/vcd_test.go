package trace

import (
	"strings"
	"testing"
)

func TestVCDStructure(t *testing.T) {
	r := New("pe0")
	r.SegBegin(0, "A")
	r.SegEnd(50, "A")
	r.SegBegin(50, "B")
	r.SegEnd(100, "B")
	r.Append(Record{At: 30, Kind: KindIRQ, Label: "irq0", Arg: 1})
	r.Append(Record{At: 35, Kind: KindIRQ, Label: "irq0", Arg: 0})

	var sb strings.Builder
	if err := r.VCD(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module pe0 $end",
		"$var wire 1 ! A $end",
		"$var wire 1 \" B $end",
		"$var wire 1 # irq0 $end",
		"$enddefinitions $end",
		"#0\n",
		"#30\n",
		"#50\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	// A goes high at 0 and low at 50; B the reverse.
	idx0 := strings.Index(out, "#0\n")
	idx50 := strings.Index(out, "#50\n")
	idx100 := strings.Index(out, "#100\n")
	if idx0 < 0 || idx50 < 0 || idx100 < 0 {
		t.Fatalf("missing timestamps:\n%s", out)
	}
	seg0 := out[idx0:idx50]
	if !strings.Contains(seg0, "1!") {
		t.Errorf("A not high at t=0:\n%s", seg0)
	}
	seg50 := out[idx50:idx100]
	if !strings.Contains(seg50, "0!") || !strings.Contains(seg50, "1\"") {
		t.Errorf("handover at t=50 wrong:\n%s", seg50)
	}
}

func TestVCDChronological(t *testing.T) {
	r := New("x")
	r.SegBegin(10, "T")
	r.SegEnd(90, "T")
	var sb strings.Builder
	if err := r.VCD(&sb); err != nil {
		t.Fatal(err)
	}
	last := int64(-1)
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(line, "#") {
			var ts int64
			if _, err := fmtSscan(line[1:], &ts); err != nil {
				t.Fatalf("bad timestamp line %q", line)
			}
			if ts < last {
				t.Fatalf("timestamps not monotonic: %d after %d", ts, last)
			}
			last = ts
		}
	}
}

func fmtSscan(s string, v *int64) (int, error) {
	n := int64(0)
	if s == "" {
		return 0, errEmpty
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, errEmpty
		}
		n = n*10 + int64(c-'0')
	}
	*v = n
	return 1, nil
}

var errEmpty = &parseErr{}

type parseErr struct{}

func (*parseErr) Error() string { return "parse error" }

func TestVCDIdentSanitizes(t *testing.T) {
	if got := ident("task B2 (main)"); strings.ContainsAny(got, " ()") {
		t.Errorf("ident = %q still has forbidden characters", got)
	}
	if ident("") != "unnamed" {
		t.Errorf("empty ident = %q", ident(""))
	}
}
