package trace

import (
	"sort"

	"repro/internal/sim"
)

// Interval is a half-open time span [Start, End) during which a task or
// behavior was executing (modeled execution, i.e. delay or running state).
type Interval struct {
	Start, End sim.Time
}

// Duration returns End-Start.
func (iv Interval) Duration() sim.Time { return iv.End - iv.Start }

// activeState reports whether an RTOS task state name counts as occupying
// the CPU.
func activeState(s string) bool { return s == "running" || s == "delay" }

// ExecIntervals returns the merged execution intervals of a task or
// behavior: for RTOS tasks, spans in the running/delay states; for
// unscheduled behaviors, SegBegin/SegEnd pairs. Adjacent intervals that
// touch are merged. A still-open interval at the end of the trace is
// closed at the last record's timestamp.
func (r *Recorder) ExecIntervals(task string) []Interval {
	var out []Interval
	var openAt sim.Time
	open := false
	begin := func(at sim.Time) {
		if !open {
			openAt, open = at, true
		}
	}
	end := func(at sim.Time) {
		if open {
			open = false
			if n := len(out); n > 0 && out[n-1].End == openAt {
				out[n-1].End = at // merge touching intervals
				return
			}
			out = append(out, Interval{openAt, at})
		}
	}
	var last sim.Time
	for _, rec := range r.recs {
		last = rec.At
		if rec.Task != task {
			continue
		}
		switch rec.Kind {
		case KindSegBegin:
			begin(rec.At)
		case KindSegEnd:
			end(rec.At)
		case KindTaskState:
			wasActive, isActive := activeState(rec.From), activeState(rec.To)
			switch {
			case !wasActive && isActive:
				begin(rec.At)
			case wasActive && !isActive:
				end(rec.At)
			}
		}
	}
	if open {
		end(last)
	}
	return out
}

// Tasks returns the sorted set of task/behavior names appearing in the
// trace.
func (r *Recorder) Tasks() []string {
	set := map[string]bool{}
	for _, rec := range r.recs {
		if rec.Task != "" {
			set[rec.Task] = true
		}
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ContextSwitches counts dispatch records that hand the CPU to a task
// different from the last task that ran (the Table 1 metric). Idle gaps do
// not reset the last-ran task.
func (r *Recorder) ContextSwitches() int {
	n := 0
	last := ""
	for _, rec := range r.recs {
		if rec.Kind != KindDispatch || rec.To == "-" || rec.To == "" {
			continue
		}
		if last != "" && rec.To != last {
			n++
		}
		last = rec.To
	}
	return n
}

// Latencies pairs each marker labeled from with the next marker labeled to
// that carries the same Arg, returning the time differences in order of
// the from markers. Markers with no matching partner are dropped. This
// computes end-to-end latencies such as the vocoder's transcoding delay
// (from "frame-in" to "frame-out" with Arg = frame number).
func (r *Recorder) Latencies(from, to string) []sim.Time {
	type pending struct {
		arg int64
		at  sim.Time
	}
	var starts []pending
	ends := map[int64][]sim.Time{} // arg -> ascending to-marker times
	seen := map[int64]bool{}
	for _, rec := range r.recs {
		if rec.Kind != KindMarker {
			continue
		}
		switch rec.Label {
		case from:
			if !seen[rec.Arg] { // first from-marker per arg wins
				seen[rec.Arg] = true
				starts = append(starts, pending{rec.Arg, rec.At})
			}
		case to:
			ends[rec.Arg] = append(ends[rec.Arg], rec.At)
		}
	}
	var out []sim.Time
	for _, p := range starts {
		for _, at := range ends[p.arg] {
			if at >= p.at {
				out = append(out, at-p.at)
				break
			}
		}
	}
	return out
}

// MarkerTimes returns the timestamps of all markers with the given label.
func (r *Recorder) MarkerTimes(label string) []sim.Time {
	var out []sim.Time
	for _, rec := range r.recs {
		if rec.Kind == KindMarker && rec.Label == label {
			out = append(out, rec.At)
		}
	}
	return out
}

// ResponseTimes returns, for a task, the delays between entering the ready
// state and the next transition to running — the dispatch latencies the
// paper's response-time discussion concerns.
func (r *Recorder) ResponseTimes(task string) []sim.Time {
	var out []sim.Time
	var readyAt sim.Time
	ready := false
	for _, rec := range r.recs {
		if rec.Kind != KindTaskState || rec.Task != task {
			continue
		}
		switch {
		case rec.To == "ready" && !ready:
			readyAt, ready = rec.At, true
		case rec.To == "running" && ready:
			out = append(out, rec.At-readyAt)
			ready = false
		}
	}
	return out
}

// BusyTime sums the execution intervals of a task.
func (r *Recorder) BusyTime(task string) sim.Time {
	var total sim.Time
	for _, iv := range r.ExecIntervals(task) {
		total += iv.Duration()
	}
	return total
}

// End returns the timestamp of the last record (0 for an empty trace).
func (r *Recorder) End() sim.Time {
	if len(r.recs) == 0 {
		return 0
	}
	return r.recs[len(r.recs)-1].At
}

// Overlap returns the total time during which two tasks' execution
// intervals overlap. In a correctly serialized RTOS model this is zero for
// tasks of the same OS instance; in the unscheduled model it is generally
// positive (paper Figure 8(a) vs 8(b)).
func (r *Recorder) Overlap(a, b string) sim.Time {
	ia, ib := r.ExecIntervals(a), r.ExecIntervals(b)
	var total sim.Time
	i, j := 0, 0
	for i < len(ia) && j < len(ib) {
		lo := maxT(ia[i].Start, ib[j].Start)
		hi := minT(ia[i].End, ib[j].End)
		if hi > lo {
			total += hi - lo
		}
		if ia[i].End < ib[j].End {
			i++
		} else {
			j++
		}
	}
	return total
}

func maxT(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

func minT(a, b sim.Time) sim.Time {
	if a < b {
		return a
	}
	return b
}
