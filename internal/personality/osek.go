package personality

import (
	"repro/internal/core"
	"repro/internal/sim"
)

// osekRT maps the Runtime surface onto OSEK-style services. Task
// lifecycle uses the core dispatcher directly (ActivateTask/
// TerminateTask are the paper model's activate/terminate); communication
// uses FIFO queued messages in the style of OSEK COM, since OSEK proper
// has no blocking semaphore — its resources are the non-blocking
// ceiling-protocol locks exercised by the osek package. Grants are
// direct handoff in strict FIFO arrival order, which is where OSEK runs
// diverge observably from the generic personality's notify-and-recontend
// semantics.
type osekRT struct {
	os *core.OS
}

func newOSEK(os *core.OS) Runtime {
	// OSEK OS 2.2.3 §4.6.5: a preempted task re-enters its priority level
	// as the oldest ready task, not the newest.
	os.SetPreemptFrontReinsert(true)
	return &osekRT{os: os}
}

func (r *osekRT) Kind() string { return OSEK }
func (r *osekRT) OS() *core.OS { return r.os }

func (r *osekRT) TaskCreate(name string, typ core.TaskType, period, wcet sim.Time, prio int) *core.Task {
	return r.os.TaskCreate(name, typ, period, wcet, prio)
}

func (r *osekRT) Activate(p *sim.Proc, t *core.Task) { r.os.TaskActivate(p, t) }
func (r *osekRT) Compute(p *sim.Proc, d sim.Time)    { r.os.TimeWait(p, d) }
func (r *osekRT) EndCycle(p *sim.Proc)               { r.os.TaskEndCycle(p) }
func (r *osekRT) Terminate(p *sim.Proc)              { r.os.TaskTerminate(p) }
func (r *osekRT) Sleep(p *sim.Proc)                  { r.os.TaskSleep(p) }
func (r *osekRT) Wake(p *sim.Proc, t *core.Task)     { r.os.TaskActivate(p, t) }
func (r *osekRT) Schedule(p *sim.Proc)               { r.os.Yield(p) }

func (r *osekRT) ChangePriority(p *sim.Proc, t *core.Task, prio int) {
	// OSEK has no dynamic-priority service; the dispatcher-level change
	// models the ceiling-style boost/restore the osek package performs.
	t.SetPriority(prio)
	r.os.Reschedule(p)
}

func (r *osekRT) NewQueue(name string, capacity int) Queue {
	return &osekQueue{
		os: r.os, site: "queue:" + name, cap: capacity,
		res: r.os.Monitor().NewResource(name, "queue", false),
	}
}

func (r *osekRT) NewSemaphore(name string, count int) Semaphore {
	return &osekSem{
		os: r.os, site: "semaphore:" + name, count: count,
		res: r.os.Monitor().NewResource(name, "semaphore", false),
	}
}

// osekSem is a counting semaphore with FIFO direct handoff: a release
// with waiters grants the head waiter without touching the count, so
// grant order is arrival order regardless of task priority.
type osekSem struct {
	os    *core.OS
	site  string
	count int
	wq    []*core.Task
	res   *core.Resource
}

func (s *osekSem) Acquire(p *sim.Proc) {
	if s.count > 0 {
		s.count--
		s.res.Acquire(p)
		return
	}
	t := s.os.Current()
	s.wq = append(s.wq, t)
	s.res.Block(p)
	s.os.Suspend(p, core.TaskWaitingEvent, s.site)
	// The releaser removed us from the queue before the wakeup: the
	// grant is ours, the count was never incremented.
	s.res.Unblock(p)
	s.res.Acquire(p)
}

func (s *osekSem) Release(p *sim.Proc) {
	s.res.Release(p)
	if len(s.wq) > 0 {
		t := s.wq[0]
		copy(s.wq, s.wq[1:])
		s.wq = s.wq[:len(s.wq)-1]
		s.os.Resume(p, t)
		return
	}
	s.count++
}

// osekQueue is a FIFO queued message object (OSEK COM queued messages):
// receives block while empty, sends block while a finite capacity is
// full. Wakeups hand exactly one blocked peer back to the ready queue;
// the woken task re-checks the buffer under the single-CPU atomicity the
// dispatcher guarantees.
type osekQueue struct {
	os    *core.OS
	site  string
	cap   int
	buf   []int64
	sendQ []*core.Task
	recvQ []*core.Task
	res   *core.Resource
}

func (q *osekQueue) Send(p *sim.Proc, v int64) {
	for q.cap > 0 && len(q.buf) >= q.cap {
		t := q.os.Current()
		q.sendQ = append(q.sendQ, t)
		q.res.Block(p)
		q.os.Suspend(p, core.TaskWaitingEvent, q.site)
		q.res.Unblock(p)
	}
	q.buf = append(q.buf, v)
	if len(q.recvQ) > 0 {
		t := q.recvQ[0]
		copy(q.recvQ, q.recvQ[1:])
		q.recvQ = q.recvQ[:len(q.recvQ)-1]
		q.os.Resume(p, t)
	}
}

func (q *osekQueue) Recv(p *sim.Proc) int64 {
	for len(q.buf) == 0 {
		t := q.os.Current()
		q.recvQ = append(q.recvQ, t)
		q.res.Block(p)
		q.os.Suspend(p, core.TaskWaitingEvent, q.site)
		q.res.Unblock(p)
	}
	v := q.buf[0]
	copy(q.buf, q.buf[1:])
	q.buf = q.buf[:len(q.buf)-1]
	if len(q.sendQ) > 0 {
		t := q.sendQ[0]
		copy(q.sendQ, q.sendQ[1:])
		q.sendQ = q.sendQ[:len(q.sendQ)-1]
		q.os.Resume(p, t)
	}
	return v
}
