// Package personality puts an RTOS "personality" behind one interface:
// the same abstract dispatcher (internal/core) can present the generic
// paper-model service surface, a µITRON 4.0 kernel, or an OSEK/VDX
// kernel. A Runtime maps the model-level operations application runners
// use — activate, compute, end-of-cycle, terminate, sleep/wake, priority
// change, and message/semaphore communication — onto the corresponding
// native services of the selected personality, so the same task set can
// be simulated under different target RTOS APIs and compared (context
// switches, blocking time, deadline misses) without touching the
// scheduler underneath. This is the paper's "RTOS library" axis: the
// abstract model stands in for any concrete RTOS, and personalities are
// the refinement targets.
//
// The generic personality routes through the channel package unchanged,
// so existing models keep byte-identical traces. The itron personality
// uses mailboxes, ITRON semaphores (direct-handoff FIFO grant) and
// slp_tsk/wup_tsk. The osek personality uses the core task lifecycle
// with FIFO queued messages in the style of OSEK COM — OSEK proper has
// no blocking semaphore, its resources are the ceiling-protocol locks
// tested in the osek package's conformance suite.
package personality

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Personality kinds accepted by New.
const (
	Generic = "generic"
	ITRON   = "itron"
	OSEK    = "osek"
)

// Kinds returns every personality kind, in canonical order.
func Kinds() []string { return []string{Generic, ITRON, OSEK} }

// Valid reports whether kind names a personality ("" counts: it selects
// the generic default). Front ends use it to validate configuration
// before a dispatcher instance exists.
func Valid(kind string) bool {
	switch kind {
	case "", Generic, ITRON, OSEK:
		return true
	}
	return false
}

// Queue is a personality-mapped message channel: blocking receive,
// send blocking only when a finite capacity is exhausted.
type Queue interface {
	Send(p *sim.Proc, v int64)
	Recv(p *sim.Proc) int64
}

// Semaphore is a personality-mapped counting semaphore. Release is
// callable from interrupt handlers (the paper's bus-driver ISR pattern).
type Semaphore interface {
	Acquire(p *sim.Proc)
	Release(p *sim.Proc)
}

// Runtime is the personality-neutral service surface application runners
// program against. Implementations translate each operation to the
// native service of their kernel API; all of them drive the same
// dispatcher, so scheduling policy, time model and telemetry are shared.
type Runtime interface {
	// Kind returns the personality kind string.
	Kind() string
	// OS returns the underlying dispatcher instance.
	OS() *core.OS

	// TaskCreate allocates a task control block.
	TaskCreate(name string, typ core.TaskType, period, wcet sim.Time, prio int) *core.Task
	// Activate releases a task (binding the calling process on first use).
	Activate(p *sim.Proc, t *core.Task)
	// Compute models d time units of task execution.
	Compute(p *sim.Proc, d sim.Time)
	// EndCycle ends a periodic task's cycle and waits for its next release.
	EndCycle(p *sim.Proc)
	// Terminate ends the calling task.
	Terminate(p *sim.Proc)
	// Sleep blocks the calling task until a Wake addresses it.
	Sleep(p *sim.Proc)
	// Wake releases a task blocked in Sleep (or queues the wakeup, where
	// the personality supports wakeup counting).
	Wake(p *sim.Proc, t *core.Task)
	// ChangePriority changes a task's priority through the personality's
	// native service, re-keying any indexed ready-queue entry.
	ChangePriority(p *sim.Proc, t *core.Task, prio int)
	// Schedule is a voluntary scheduling point (OSEK Schedule, generic
	// yield).
	Schedule(p *sim.Proc)

	// NewQueue creates a message channel of the personality's native kind.
	NewQueue(name string, capacity int) Queue
	// NewSemaphore creates a counting semaphore of the personality's
	// native kind.
	NewSemaphore(name string, count int) Semaphore
}

// New returns the Runtime of the requested kind over the given
// dispatcher instance.
func New(kind string, os *core.OS) (Runtime, error) {
	switch kind {
	case Generic, "":
		return newGeneric(os), nil
	case ITRON:
		return newITRON(os), nil
	case OSEK:
		return newOSEK(os), nil
	}
	return nil, fmt.Errorf("personality: unknown kind %q (have %v)", kind, Kinds())
}
