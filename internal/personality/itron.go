package personality

import (
	"repro/internal/core"
	"repro/internal/personality/itron"
	"repro/internal/sim"
)

// itronRT maps the Runtime surface onto µITRON 4.0 services: task sleep
// becomes slp_tsk/wup_tsk (with wakeup counting), termination ext_tsk,
// priority changes chg_pri, queues mailboxes, and semaphores the ITRON
// direct-handoff kind whose grant order is the wait-queue order rather
// than the generic notify-and-recontend race.
type itronRT struct {
	kr *itron.Kernel
}

func newITRON(os *core.OS) Runtime { return &itronRT{kr: itron.NewKernel(os)} }

func (r *itronRT) Kind() string { return ITRON }
func (r *itronRT) OS() *core.OS { return r.kr.OS() }

func (r *itronRT) TaskCreate(name string, typ core.TaskType, period, wcet sim.Time, prio int) *core.Task {
	return r.kr.OS().TaskCreate(name, typ, period, wcet, prio)
}

func (r *itronRT) Activate(p *sim.Proc, t *core.Task) { r.kr.OS().TaskActivate(p, t) }
func (r *itronRT) Compute(p *sim.Proc, d sim.Time)    { r.kr.OS().TimeWait(p, d) }
func (r *itronRT) EndCycle(p *sim.Proc)               { r.kr.OS().TaskEndCycle(p) }
func (r *itronRT) Terminate(p *sim.Proc)              { r.kr.ExtTsk(p) }
func (r *itronRT) Sleep(p *sim.Proc)                  { r.kr.SlpTsk(p) }
func (r *itronRT) Wake(p *sim.Proc, t *core.Task)     { r.kr.WupTsk(p, t) }
func (r *itronRT) Schedule(p *sim.Proc)               { r.kr.OS().Yield(p) }

func (r *itronRT) ChangePriority(p *sim.Proc, t *core.Task, prio int) {
	if r.kr.ChgPri(p, t, prio) != itron.EOK {
		// Model priorities outside the 1..TMAX_TPRI band (or dormant
		// targets) fall back to the dispatcher-level change so all
		// personalities honor the same request.
		t.SetPriority(prio)
		r.kr.OS().Reschedule(p)
	}
}

func (r *itronRT) NewQueue(name string, capacity int) Queue {
	m, er := r.kr.CreMbx(name, itron.TATFifo)
	if er != itron.EOK {
		panic("personality: cre_mbx " + er.String())
	}
	return itronQueue{m: m}
}

func (r *itronRT) NewSemaphore(name string, count int) Semaphore {
	s, er := r.kr.CreSem(name, count, itron.TMaxSemCnt, itron.TATFifo)
	if er != itron.EOK {
		panic("personality: cre_sem " + er.String())
	}
	return itronSem{s: s}
}

// itronQueue adapts a mailbox. Mailboxes are unbounded (capacity is a
// property of the message pool in real ITRON systems), so sends never
// block — scenarios are constructed so that bounded-queue sends never
// block either, keeping the personalities comparable.
type itronQueue struct{ m *itron.Mailbox }

func (q itronQueue) Send(p *sim.Proc, v int64) {
	if er := q.m.Snd(p, itron.Msg{Val: v}); er != itron.EOK {
		panic("personality: snd_mbx " + er.String())
	}
}

func (q itronQueue) Recv(p *sim.Proc) int64 {
	msg, er := q.m.Rcv(p)
	if er != itron.EOK {
		panic("personality: rcv_mbx " + er.String())
	}
	return msg.Val
}

type itronSem struct{ s *itron.Semaphore }

func (s itronSem) Acquire(p *sim.Proc) {
	if er := s.s.Wai(p); er != itron.EOK {
		panic("personality: wai_sem " + er.String())
	}
}

func (s itronSem) Release(p *sim.Proc) {
	if er := s.s.Sig(p); er != itron.EOK {
		panic("personality: sig_sem " + er.String())
	}
}
