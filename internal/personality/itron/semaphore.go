package itron

import (
	"repro/internal/core"
	"repro/internal/sim"
)

// Semaphore is a µITRON counting semaphore (cre_sem/wai_sem/sig_sem).
// Release is a direct handoff: sig_sem with waiters grants the resource
// to the head of the wait queue (FIFO under TA_TFIFO regardless of task
// priority — a genuine divergence from the generic personality, whose
// notify-all/recheck discipline grants in policy order).
type Semaphore struct {
	k     *Kernel
	name  string
	site  string
	count int
	max   int
	wq    waitQueue
	res   *core.Resource
}

// CreSem creates a semaphore with initial count init and maximum count
// max (cre_sem). E_PAR for a malformed definition.
func (k *Kernel) CreSem(name string, init, max int, attr Attr) (*Semaphore, ER) {
	if init < 0 || max < 1 || max > TMaxSemCnt || init > max {
		return nil, EPAR
	}
	return &Semaphore{k: k, name: name, site: "semaphore:" + name,
		count: init, max: max, wq: newWaitQueue(attr),
		res: k.os.Monitor().NewResource(name, "semaphore", false)}, EOK
}

// Name returns the semaphore's name.
func (s *Semaphore) Name() string { return s.name }

// Count returns the current resource count (ref_sem snapshot).
func (s *Semaphore) Count() int { return s.count }

// Wai acquires one resource, waiting forever (wai_sem).
func (s *Semaphore) Wai(p *sim.Proc) ER { return s.TWai(p, TMOFevr) }

// Pol acquires one resource without waiting (pol_sem): E_TMOUT when none
// is available.
func (s *Semaphore) Pol(p *sim.Proc) ER { return s.TWai(p, TMOPol) }

// TWai acquires one resource with a timeout (twai_sem): E_TMOUT on
// expiry, E_RLWAI when released by RelWai.
func (s *Semaphore) TWai(p *sim.Proc, tmo sim.Time) ER {
	tc, er := s.k.self(p)
	if er != EOK {
		return er
	}
	if s.count > 0 {
		s.count--
		s.res.Acquire(p)
		return EOK
	}
	if tmo == TMOPol {
		return ETMOUT
	}
	s.wq.enqueue(tc)
	s.res.Block(p)
	woken := s.k.os.SuspendTimeout(p, core.TaskWaitingEvent, s.site, tmo,
		func() { s.wq.remove(tc) })
	if tc.relwai {
		tc.relwai = false
		s.res.Unblock(p)
		return ERLWAI
	}
	if !woken {
		s.res.Unblock(p)
		return ETMOUT
	}
	// Direct handoff from Sig: the count was never incremented.
	s.res.Acquire(p)
	return EOK
}

// Sig returns one resource (sig_sem): the head waiter is released
// directly, or the count is incremented — E_QOVR past the maximum.
// Callable from ISRs.
func (s *Semaphore) Sig(p *sim.Proc) ER {
	s.res.Release(p)
	if tc := s.wq.pop(); tc != nil {
		s.k.os.Resume(p, tc.task)
		return EOK
	}
	if s.count >= s.max {
		return EQOVR
	}
	s.count++
	return EOK
}
