package itron

import (
	"repro/internal/core"
	"repro/internal/sim"
)

// FlagPattern is an eventflag bit pattern.
type FlagPattern uint32

// Mode selects the eventflag wait condition (µITRON 4.0 wai_flg wfmode).
type Mode uint

const (
	// TWFAndw releases the wait when all bits of the wait pattern are set.
	TWFAndw Mode = 1 << iota
	// TWFOrw releases the wait when any bit of the wait pattern is set.
	TWFOrw
)

// EventFlag is a µITRON eventflag (cre_flg/set_flg/clr_flg/wai_flg): a
// bit pattern tasks wait on with AND/OR conditions. With TA_CLR the
// whole pattern clears when a wait is released; without TA_WMUL only one
// task may wait at a time (E_ILUSE for the second).
type EventFlag struct {
	k    *Kernel
	name string
	site string
	attr Attr
	ptn  FlagPattern
	wq   waitQueue
	res  *core.Resource
}

// CreFlg creates an eventflag with the given attributes and initial
// pattern (cre_flg).
func (k *Kernel) CreFlg(name string, attr Attr, init FlagPattern) (*EventFlag, ER) {
	return &EventFlag{k: k, name: name, site: "eventflag:" + name, attr: attr,
		ptn: init, wq: newWaitQueue(attr),
		res: k.os.Monitor().NewResource(name, "eventflag", false)}, EOK
}

// Name returns the eventflag's name.
func (f *EventFlag) Name() string { return f.name }

// Pattern returns the current bit pattern (ref_flg snapshot).
func (f *EventFlag) Pattern() FlagPattern { return f.ptn }

func matches(ptn, waiptn FlagPattern, mode Mode) bool {
	if mode == TWFAndw {
		return ptn&waiptn == waiptn
	}
	return ptn&waiptn != 0
}

// Set sets bits of the pattern (set_flg) and releases every waiter whose
// condition becomes true, in wait-queue order. Under TA_CLR the whole
// pattern clears at the first release, so at most one waiter is freed
// per call. Callable from ISRs.
func (f *EventFlag) Set(p *sim.Proc, setptn FlagPattern) ER {
	f.ptn |= setptn
	for i := 0; i < len(f.wq.q); {
		tc := f.wq.q[i]
		if !matches(f.ptn, tc.waiptn, tc.wfmode) {
			i++
			continue
		}
		tc.relptn = f.ptn
		f.wq.remove(tc)
		f.k.os.Resume(p, tc.task)
		if f.attr&TAClr != 0 {
			f.ptn = 0
			break
		}
	}
	return EOK
}

// Clr clears pattern bits (clr_flg): the new pattern is the AND of the
// current pattern and clrptn. It never releases waits.
func (f *EventFlag) Clr(p *sim.Proc, clrptn FlagPattern) ER {
	f.ptn &= clrptn
	return EOK
}

// Wai waits until the flag pattern satisfies waiptn under mode
// (wai_flg), returning the pattern at release.
func (f *EventFlag) Wai(p *sim.Proc, waiptn FlagPattern, mode Mode) (FlagPattern, ER) {
	return f.TWai(p, waiptn, mode, TMOFevr)
}

// Pol is wai_flg with TMO_POL (pol_flg).
func (f *EventFlag) Pol(p *sim.Proc, waiptn FlagPattern, mode Mode) (FlagPattern, ER) {
	return f.TWai(p, waiptn, mode, TMOPol)
}

// TWai is wai_flg with a timeout (twai_flg): E_PAR for an empty wait
// pattern or invalid mode, E_ILUSE for a second waiter on a TA_WSGL
// flag, E_TMOUT on expiry, E_RLWAI when released forcibly.
func (f *EventFlag) TWai(p *sim.Proc, waiptn FlagPattern, mode Mode, tmo sim.Time) (FlagPattern, ER) {
	tc, er := f.k.self(p)
	if er != EOK {
		return 0, er
	}
	if waiptn == 0 || (mode != TWFAndw && mode != TWFOrw) {
		return 0, EPAR
	}
	if matches(f.ptn, waiptn, mode) {
		got := f.ptn
		if f.attr&TAClr != 0 {
			f.ptn = 0
		}
		return got, EOK
	}
	if tmo == TMOPol {
		return 0, ETMOUT
	}
	if f.attr&TAWMul == 0 && !f.wq.empty() {
		return 0, EILUSE
	}
	tc.waiptn = waiptn
	tc.wfmode = mode
	f.wq.enqueue(tc)
	f.res.Block(p)
	woken := f.k.os.SuspendTimeout(p, core.TaskWaitingEvent, f.site, tmo,
		func() { f.wq.remove(tc) })
	f.res.Unblock(p)
	if tc.relwai {
		tc.relwai = false
		return 0, ERLWAI
	}
	if !woken {
		return 0, ETMOUT
	}
	return tc.relptn, EOK
}
