package itron

// waitQueue holds tasks blocked on one kernel object, ordered FIFO
// (TA_TFIFO) or by current task priority with FIFO tie-break (TA_TPRI) —
// the µITRON queueing attribute that decides wakeup ordering. The
// backing array is reused across steady-state block/release cycles so
// object waits stay allocation-free once warm.
type waitQueue struct {
	pri bool
	q   []*tcb
}

func newWaitQueue(attr Attr) waitQueue { return waitQueue{pri: attr&TATPri != 0} }

func (w *waitQueue) empty() bool { return len(w.q) == 0 }
func (w *waitQueue) len() int    { return len(w.q) }

// enqueue inserts tc at its ordering position and records the membership
// back-pointer used by timeout/rel_wai removal.
func (w *waitQueue) enqueue(tc *tcb) {
	tc.wait = w
	if !w.pri {
		w.q = append(w.q, tc)
		return
	}
	// Priority order: before the first strictly lower-priority (greater
	// value) entry; equal priorities stay FIFO.
	i := len(w.q)
	for j, x := range w.q {
		if x.task.Priority() > tc.task.Priority() {
			i = j
			break
		}
	}
	w.q = append(w.q, nil)
	copy(w.q[i+1:], w.q[i:])
	w.q[i] = tc
}

// pop removes and returns the queue head (nil when empty).
func (w *waitQueue) pop() *tcb {
	if len(w.q) == 0 {
		return nil
	}
	tc := w.q[0]
	copy(w.q, w.q[1:])
	w.q = w.q[:len(w.q)-1]
	tc.wait = nil
	return tc
}

// remove drops tc from the queue if present.
func (w *waitQueue) remove(tc *tcb) bool {
	for i, x := range w.q {
		if x == tc {
			copy(w.q[i:], w.q[i+1:])
			w.q = w.q[:len(w.q)-1]
			tc.wait = nil
			return true
		}
	}
	return false
}

// requeue re-inserts tc after a priority change (chg_pri on a task
// blocked in a TA_TPRI queue re-orders it; µITRON 4.0 chg_pri moves the
// task behind equal-priority waiters).
func (w *waitQueue) requeue(tc *tcb) {
	if !w.pri {
		return
	}
	if w.remove(tc) {
		w.enqueue(tc)
	}
}
