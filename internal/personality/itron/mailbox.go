package itron

import (
	"repro/internal/core"
	"repro/internal/sim"
)

// Msg is a mailbox message: a payload word plus a message priority used
// by TA_MPRI mailboxes (µITRON passes T_MSG headers by reference; the
// model carries the payload by value).
type Msg struct {
	Val int64
	Pri int
}

// Mailbox is a µITRON mailbox (cre_mbx/snd_mbx/rcv_mbx): an unbounded
// message queue, FIFO or message-priority ordered. snd_mbx never blocks;
// rcv_mbx blocks while the box is empty. A send with waiters is a direct
// handoff to the head of the wait queue.
type Mailbox struct {
	k    *Kernel
	name string
	site string
	attr Attr
	msgs []Msg
	wq   waitQueue
	res  *core.Resource
}

// CreMbx creates a mailbox (cre_mbx).
func (k *Kernel) CreMbx(name string, attr Attr) (*Mailbox, ER) {
	return &Mailbox{k: k, name: name, site: "mailbox:" + name, attr: attr,
		wq:  newWaitQueue(attr),
		res: k.os.Monitor().NewResource(name, "mailbox", false)}, EOK
}

// Name returns the mailbox's name.
func (m *Mailbox) Name() string { return m.name }

// Len returns the number of queued messages (ref_mbx snapshot).
func (m *Mailbox) Len() int { return len(m.msgs) }

// Snd sends a message (snd_mbx). Never blocks: with a waiter present the
// message is handed over directly; otherwise it is queued, under TA_MPRI
// ordered by ascending Pri (smaller = higher) with FIFO tie-break.
// Callable from ISRs.
func (m *Mailbox) Snd(p *sim.Proc, msg Msg) ER {
	m.res.Release(p)
	if tc := m.wq.pop(); tc != nil {
		tc.msg = msg
		m.k.os.Resume(p, tc.task)
		return EOK
	}
	if m.attr&TAMPri == 0 {
		m.msgs = append(m.msgs, msg)
		return EOK
	}
	i := len(m.msgs)
	for j, x := range m.msgs {
		if x.Pri > msg.Pri {
			i = j
			break
		}
	}
	m.msgs = append(m.msgs, Msg{})
	copy(m.msgs[i+1:], m.msgs[i:])
	m.msgs[i] = msg
	return EOK
}

// Rcv receives a message, waiting forever while the box is empty
// (rcv_mbx).
func (m *Mailbox) Rcv(p *sim.Proc) (Msg, ER) { return m.TRcv(p, TMOFevr) }

// Pol receives without waiting (prcv_mbx): E_TMOUT when empty.
func (m *Mailbox) Pol(p *sim.Proc) (Msg, ER) { return m.TRcv(p, TMOPol) }

// TRcv receives with a timeout (trcv_mbx): E_TMOUT on expiry, E_RLWAI
// when released forcibly.
func (m *Mailbox) TRcv(p *sim.Proc, tmo sim.Time) (Msg, ER) {
	tc, er := m.k.self(p)
	if er != EOK {
		return Msg{}, er
	}
	if len(m.msgs) > 0 {
		msg := m.msgs[0]
		copy(m.msgs, m.msgs[1:])
		m.msgs = m.msgs[:len(m.msgs)-1]
		m.res.Acquire(p)
		return msg, EOK
	}
	if tmo == TMOPol {
		return Msg{}, ETMOUT
	}
	m.wq.enqueue(tc)
	m.res.Block(p)
	woken := m.k.os.SuspendTimeout(p, core.TaskWaitingEvent, m.site, tmo,
		func() { m.wq.remove(tc) })
	if tc.relwai {
		tc.relwai = false
		m.res.Unblock(p)
		return Msg{}, ERLWAI
	}
	if !woken {
		m.res.Unblock(p)
		return Msg{}, ETMOUT
	}
	m.res.Acquire(p)
	return tc.msg, EOK
}
