// µITRON 4.0 conformance suite: table-driven, service-by-service tests
// keyed to specification clauses (section numbers of the µITRON 4.0
// specification, Ver. 4.00). Each case pins one specified behavior —
// error codes, wakeup ordering, timeout semantics — against the
// personality implementation running on the shared dispatcher.
package itron

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// env is the per-case simulation fixture: one kernel, one OS under the
// fixed-priority policy, one µITRON personality instance.
type env struct {
	t  *testing.T
	k  *sim.Kernel
	os *core.OS
	kr *Kernel
}

func newEnv(t *testing.T) *env {
	t.Helper()
	k := sim.NewKernel()
	t.Cleanup(k.Shutdown)
	os := core.New(k, "CPU", core.PriorityPolicy{})
	os.Init()
	return &env{t: t, k: k, os: os, kr: NewKernel(os)}
}

// task spawns an aperiodic task that self-activates at t=0, runs body,
// and terminates.
func (e *env) task(name string, prio int, body func(p *sim.Proc, self *core.Task)) *core.Task {
	tk := e.os.TaskCreate(name, core.Aperiodic, 0, 0, prio)
	e.k.Spawn(name, func(p *sim.Proc) {
		e.os.TaskActivate(p, tk)
		body(p, tk)
		e.os.TaskTerminate(p)
	})
	return tk
}

// parked spawns a task that stays suspended until activated.
func (e *env) parked(name string, prio int, body func(p *sim.Proc, self *core.Task)) *core.Task {
	tk := e.os.TaskCreate(name, core.Aperiodic, 0, 0, prio)
	e.k.Spawn(name, func(p *sim.Proc) {
		e.os.Adopt(p, tk)
		body(p, tk)
		e.os.TaskTerminate(p)
	})
	return tk
}

// isr runs fn as an interrupt handler at simulated time `when`.
func (e *env) isr(when sim.Time, name string, fn func(p *sim.Proc)) {
	pr := e.k.Spawn(name, func(p *sim.Proc) {
		p.WaitFor(when)
		e.os.InterruptEnter(p, name)
		fn(p)
		e.os.InterruptReturn(p, name)
	})
	pr.SetDaemon(true)
}

// run starts the OS and runs the simulation to completion.
func (e *env) run() {
	e.t.Helper()
	e.os.Start(nil)
	if err := e.k.Run(); err != nil {
		e.t.Fatal(err)
	}
	if d := e.os.Diagnosis(); d != nil {
		e.t.Fatal(d)
	}
}

func wantER(t *testing.T, what string, got, want ER) {
	t.Helper()
	if got != want {
		t.Errorf("%s = %v, want %v", what, got, want)
	}
}

func mustSem(t *testing.T, k *Kernel, name string, init, max int, attr Attr) *Semaphore {
	t.Helper()
	s, er := k.CreSem(name, init, max, attr)
	if er != EOK {
		t.Fatalf("CreSem(%s) = %v", name, er)
	}
	return s
}

func mustFlg(t *testing.T, k *Kernel, name string, attr Attr, init FlagPattern) *EventFlag {
	t.Helper()
	f, er := k.CreFlg(name, attr, init)
	if er != EOK {
		t.Fatalf("CreFlg(%s) = %v", name, er)
	}
	return f
}

func mustMbx(t *testing.T, k *Kernel, name string, attr Attr) *Mailbox {
	t.Helper()
	m, er := k.CreMbx(name, attr)
	if er != EOK {
		t.Fatalf("CreMbx(%s) = %v", name, er)
	}
	return m
}

// TestITRONConformance is the µITRON 4.0 conformance table. Case names
// are "<spec clause>/<behavior>".
func TestITRONConformance(t *testing.T) {
	cases := []struct {
		clause string // µITRON 4.0 specification section
		name   string
		run    func(t *testing.T)
	}{
		// -------------------------------------------------- task sleep/wakeup
		{"4.2.4-slp_tsk", "blocks-until-wup_tsk", func(t *testing.T) {
			e := newEnv(t)
			var wokeAt sim.Time = -1
			var hi *core.Task
			hi = e.task("hi", 1, func(p *sim.Proc, self *core.Task) {
				wantER(t, "SlpTsk", e.kr.SlpTsk(p), EOK)
				wokeAt = p.Now()
			})
			e.task("lo", 5, func(p *sim.Proc, _ *core.Task) {
				e.os.TimeWait(p, 70)
				wantER(t, "WupTsk", e.kr.WupTsk(p, hi), EOK)
			})
			e.run()
			if wokeAt != 70 {
				t.Errorf("woke at %v, want 70", wokeAt)
			}
		}},
		{"4.2.5-wup_tsk", "queues-when-not-sleeping", func(t *testing.T) {
			e := newEnv(t)
			var hi *core.Task
			hi = e.task("hi", 1, func(p *sim.Proc, _ *core.Task) {
				e.os.TimeWait(p, 50) // wup arrives at t=10 while running
				// The queued wakeup satisfies this sleep without blocking.
				start := p.Now()
				wantER(t, "SlpTsk", e.kr.SlpTsk(p), EOK)
				if p.Now() != start {
					t.Errorf("slp_tsk blocked %v despite queued wakeup", p.Now()-start)
				}
			})
			e.isr(10, "wake", func(p *sim.Proc) {
				wantER(t, "WupTsk", e.kr.WupTsk(p, hi), EOK)
			})
			e.run()
		}},
		{"4.2.5-wup_tsk", "wakeup-count-accumulates", func(t *testing.T) {
			e := newEnv(t)
			var hi *core.Task
			hi = e.task("hi", 1, func(p *sim.Proc, _ *core.Task) {
				e.os.TimeWait(p, 30)
				wantER(t, "SlpTsk#1", e.kr.SlpTsk(p), EOK)
				wantER(t, "SlpTsk#2", e.kr.SlpTsk(p), EOK)
				// Third sleep has no queued wakeup left: it must block
				// until the ISR at t=100.
				wantER(t, "SlpTsk#3", e.kr.SlpTsk(p), EOK)
				if p.Now() != 100 {
					t.Errorf("third slp_tsk returned at %v, want 100", p.Now())
				}
			})
			e.isr(10, "w1", func(p *sim.Proc) { e.kr.WupTsk(p, hi) })
			e.isr(20, "w2", func(p *sim.Proc) { e.kr.WupTsk(p, hi) })
			e.isr(100, "w3", func(p *sim.Proc) { e.kr.WupTsk(p, hi) })
			e.run()
		}},
		{"4.2.5-wup_tsk", "E_QOVR-past-TMAX_WUPCNT", func(t *testing.T) {
			e := newEnv(t)
			var hi *core.Task
			hi = e.task("hi", 1, func(p *sim.Proc, _ *core.Task) {
				// Idle delay: hi stays alive (not dormant) while lo floods
				// it with wakeups; a delay does not consume them.
				e.kr.DlyTsk(p, 1000)
			})
			e.task("lo", 5, func(p *sim.Proc, _ *core.Task) {
				for i := 0; i < TMaxWupCnt; i++ {
					if er := e.kr.WupTsk(p, hi); er != EOK {
						t.Fatalf("WupTsk#%d = %v", i, er)
					}
				}
				wantER(t, "WupTsk overflow", e.kr.WupTsk(p, hi), EQOVR)
			})
			e.run()
		}},
		{"4.2.5-wup_tsk", "E_OBJ-on-dormant-task", func(t *testing.T) {
			e := newEnv(t)
			dead := e.task("short", 1, func(p *sim.Proc, _ *core.Task) {})
			e.task("lo", 5, func(p *sim.Proc, _ *core.Task) {
				e.os.TimeWait(p, 10) // short has terminated by now
				wantER(t, "WupTsk dormant", e.kr.WupTsk(p, dead), EOBJ)
			})
			e.run()
		}},
		{"4.2.6-can_wup", "returns-and-clears-count", func(t *testing.T) {
			e := newEnv(t)
			e.task("hi", 1, func(p *sim.Proc, self *core.Task) {
				e.kr.WupTsk(p, self) // self-wakeups queue
				e.kr.WupTsk(p, self)
				n, er := e.kr.CanWup(p, nil)
				wantER(t, "CanWup", er, EOK)
				if n != 2 {
					t.Errorf("CanWup count = %d, want 2", n)
				}
				// Count cleared: the next sleep blocks (until the ISR).
				wantER(t, "SlpTsk", e.kr.SlpTsk(p), EOK)
				if p.Now() != 40 {
					t.Errorf("slept until %v, want 40", p.Now())
				}
			})
			tgt := e.os.Tasks()[0]
			e.isr(40, "wake", func(p *sim.Proc) { e.kr.WupTsk(p, tgt) })
			e.run()
		}},
		{"4.2.4-tslp_tsk", "E_TMOUT-at-deadline", func(t *testing.T) {
			e := newEnv(t)
			e.task("hi", 1, func(p *sim.Proc, _ *core.Task) {
				wantER(t, "TSlpTsk", e.kr.TSlpTsk(p, 60), ETMOUT)
				if p.Now() != 60 {
					t.Errorf("timed out at %v, want 60", p.Now())
				}
			})
			e.run()
		}},
		{"4.2.4-tslp_tsk", "wakeup-before-timeout", func(t *testing.T) {
			e := newEnv(t)
			var hi *core.Task
			hi = e.task("hi", 1, func(p *sim.Proc, _ *core.Task) {
				wantER(t, "TSlpTsk", e.kr.TSlpTsk(p, 500), EOK)
				if p.Now() != 25 {
					t.Errorf("woke at %v, want 25", p.Now())
				}
			})
			e.isr(25, "wake", func(p *sim.Proc) { e.kr.WupTsk(p, hi) })
			e.run()
		}},
		{"4.2.4-tslp_tsk", "TMO_POL-polls", func(t *testing.T) {
			e := newEnv(t)
			e.task("hi", 1, func(p *sim.Proc, _ *core.Task) {
				start := p.Now()
				wantER(t, "TSlpTsk(TMO_POL)", e.kr.TSlpTsk(p, TMOPol), ETMOUT)
				if p.Now() != start {
					t.Error("TMO_POL blocked")
				}
			})
			e.run()
		}},
		{"4.2.7-rel_wai", "releases-sleep-with-E_RLWAI", func(t *testing.T) {
			e := newEnv(t)
			var hi *core.Task
			hi = e.task("hi", 1, func(p *sim.Proc, _ *core.Task) {
				wantER(t, "SlpTsk", e.kr.SlpTsk(p), ERLWAI)
				if p.Now() != 15 {
					t.Errorf("released at %v, want 15", p.Now())
				}
			})
			e.task("lo", 5, func(p *sim.Proc, _ *core.Task) {
				e.os.TimeWait(p, 15)
				wantER(t, "RelWai", e.kr.RelWai(p, hi), EOK)
			})
			e.run()
		}},
		{"4.2.7-rel_wai", "E_OBJ-when-not-waiting", func(t *testing.T) {
			e := newEnv(t)
			var lo *core.Task
			e.task("hi", 1, func(p *sim.Proc, _ *core.Task) {
				wantER(t, "RelWai non-waiting", e.kr.RelWai(p, lo), EOBJ)
			})
			lo = e.task("lo", 5, func(p *sim.Proc, _ *core.Task) {
				e.os.TimeWait(p, 5)
			})
			e.run()
		}},
		{"4.2.8-dly_tsk", "delay-is-not-execution-time", func(t *testing.T) {
			e := newEnv(t)
			e.task("hi", 1, func(p *sim.Proc, self *core.Task) {
				before := self.CPUTime()
				wantER(t, "DlyTsk", e.kr.DlyTsk(p, 80), EOK)
				if p.Now() != 80 {
					t.Errorf("delayed until %v, want 80", p.Now())
				}
				if self.CPUTime() != before {
					t.Errorf("dly_tsk consumed CPU time (%v)", self.CPUTime()-before)
				}
			})
			e.run()
		}},
		{"4.2.8-dly_tsk", "released-by-rel_wai", func(t *testing.T) {
			e := newEnv(t)
			var hi *core.Task
			hi = e.task("hi", 1, func(p *sim.Proc, _ *core.Task) {
				wantER(t, "DlyTsk", e.kr.DlyTsk(p, 1000), ERLWAI)
				if p.Now() != 30 {
					t.Errorf("released at %v, want 30", p.Now())
				}
			})
			e.task("lo", 5, func(p *sim.Proc, _ *core.Task) {
				e.os.TimeWait(p, 30)
				wantER(t, "RelWai", e.kr.RelWai(p, hi), EOK)
			})
			e.run()
		}},
		// -------------------------------------------------- priority services
		{"4.3.1-chg_pri", "E_PAR-out-of-range", func(t *testing.T) {
			e := newEnv(t)
			e.task("hi", 1, func(p *sim.Proc, self *core.Task) {
				wantER(t, "ChgPri(0)", e.kr.ChgPri(p, self, 0), EPAR)
				wantER(t, "ChgPri(256)", e.kr.ChgPri(p, self, 256), EPAR)
			})
			e.run()
		}},
		{"4.3.1-chg_pri", "lowering-running-task-preempts", func(t *testing.T) {
			e := newEnv(t)
			var order []string
			e.task("a", 2, func(p *sim.Proc, self *core.Task) {
				e.os.TimeWait(p, 10)
				// b (prio 5) is ready. Dropping a below b must hand over.
				wantER(t, "ChgPri", e.kr.ChgPri(p, self, 9), EOK)
				order = append(order, "a-after")
			})
			e.task("b", 5, func(p *sim.Proc, _ *core.Task) {
				e.os.TimeWait(p, 10)
				order = append(order, "b")
			})
			e.run()
			want := []string{"b", "a-after"}
			for i := range want {
				if i >= len(order) || order[i] != want[i] {
					t.Fatalf("order = %v, want %v", order, want)
				}
			}
		}},
		{"4.3.1-chg_pri", "raising-ready-task-preempts-runner", func(t *testing.T) {
			e := newEnv(t)
			var order []string
			var b *core.Task
			e.task("a", 2, func(p *sim.Proc, _ *core.Task) {
				e.os.TimeWait(p, 10)
				// b (prio 5, ready) is re-keyed above a: immediate handover.
				wantER(t, "ChgPri", e.kr.ChgPri(p, b, 1), EOK)
				order = append(order, "a-after")
			})
			b = e.task("b", 5, func(p *sim.Proc, _ *core.Task) {
				e.os.TimeWait(p, 10)
				order = append(order, "b")
			})
			e.run()
			want := []string{"b", "a-after"}
			for i := range want {
				if i >= len(order) || order[i] != want[i] {
					t.Fatalf("order = %v, want %v", order, want)
				}
			}
		}},
		{"4.3.2-get_pri", "E_OBJ-on-dormant", func(t *testing.T) {
			e := newEnv(t)
			dead := e.task("short", 1, func(p *sim.Proc, _ *core.Task) {})
			e.task("lo", 5, func(p *sim.Proc, _ *core.Task) {
				e.os.TimeWait(p, 10)
				if _, er := e.kr.GetPri(dead); er != EOBJ {
					t.Errorf("GetPri dormant = %v, want E_OBJ", er)
				}
			})
			e.run()
		}},
		{"2.3-E_CTX", "task-service-from-ISR-context", func(t *testing.T) {
			e := newEnv(t)
			e.task("hi", 1, func(p *sim.Proc, _ *core.Task) {
				e.os.TimeWait(p, 100)
			})
			e.isr(10, "bad", func(p *sim.Proc) {
				wantER(t, "SlpTsk from ISR", e.kr.SlpTsk(p), ECTX)
			})
			e.run()
		}},
		// -------------------------------------------------- semaphores
		{"4.4.1-cre_sem", "E_PAR-on-bad-definition", func(t *testing.T) {
			e := newEnv(t)
			if _, er := e.kr.CreSem("bad", 3, 2, 0); er != EPAR {
				t.Errorf("CreSem(init>max) = %v, want E_PAR", er)
			}
			if _, er := e.kr.CreSem("bad", -1, 2, 0); er != EPAR {
				t.Errorf("CreSem(init<0) = %v, want E_PAR", er)
			}
			if _, er := e.kr.CreSem("bad", 0, 0, 0); er != EPAR {
				t.Errorf("CreSem(max<1) = %v, want E_PAR", er)
			}
		}},
		{"4.4.2-wai_sem", "decrements-without-blocking", func(t *testing.T) {
			e := newEnv(t)
			s := mustSem(t, e.kr, "s", 2, 5, 0)
			e.task("hi", 1, func(p *sim.Proc, _ *core.Task) {
				start := p.Now()
				wantER(t, "Wai#1", s.Wai(p), EOK)
				wantER(t, "Wai#2", s.Wai(p), EOK)
				if p.Now() != start {
					t.Error("wai_sem blocked despite count")
				}
				if s.Count() != 0 {
					t.Errorf("count = %d, want 0", s.Count())
				}
			})
			e.run()
		}},
		{"4.4.2-wai_sem", "TA_TFIFO-wakeup-order-ignores-priority", func(t *testing.T) {
			e := newEnv(t)
			s := mustSem(t, e.kr, "s", 0, 5, TATFifo)
			var order []string
			// lo blocks first (t=0, while hi idles in a delay), hi second
			// (t=20): FIFO hands the signals to lo, then hi — priority does
			// not reorder the queue.
			e.task("lo", 5, func(p *sim.Proc, _ *core.Task) {
				wantER(t, "lo", s.Wai(p), EOK)
				order = append(order, "lo")
			})
			e.task("hi", 1, func(p *sim.Proc, _ *core.Task) {
				e.kr.DlyTsk(p, 20)
				wantER(t, "hi", s.Wai(p), EOK)
				order = append(order, "hi")
			})
			e.isr(50, "sig1", func(p *sim.Proc) { s.Sig(p) })
			e.isr(60, "sig2", func(p *sim.Proc) { s.Sig(p) })
			e.run()
			want := []string{"lo", "hi"}
			for i := range want {
				if i >= len(order) || order[i] != want[i] {
					t.Fatalf("wakeup order = %v, want %v", order, want)
				}
			}
		}},
		{"4.4.2-wai_sem", "TA_TPRI-wakeup-order-by-priority", func(t *testing.T) {
			e := newEnv(t)
			s := mustSem(t, e.kr, "s", 0, 5, TATPri)
			var order []string
			// Same block order as the TA_TFIFO case (lo first, hi second),
			// but the priority-ordered queue grants hi first.
			e.task("lo", 5, func(p *sim.Proc, _ *core.Task) {
				wantER(t, "lo", s.Wai(p), EOK)
				order = append(order, "lo")
			})
			e.task("hi", 1, func(p *sim.Proc, _ *core.Task) {
				e.kr.DlyTsk(p, 20)
				wantER(t, "hi", s.Wai(p), EOK)
				order = append(order, "hi")
			})
			e.isr(50, "sig1", func(p *sim.Proc) { s.Sig(p) })
			e.isr(60, "sig2", func(p *sim.Proc) { s.Sig(p) })
			e.run()
			want := []string{"hi", "lo"}
			for i := range want {
				if i >= len(order) || order[i] != want[i] {
					t.Fatalf("wakeup order = %v, want %v", order, want)
				}
			}
		}},
		{"4.4.3-sig_sem", "E_QOVR-past-max-count", func(t *testing.T) {
			e := newEnv(t)
			s := mustSem(t, e.kr, "s", 1, 1, 0)
			e.task("hi", 1, func(p *sim.Proc, _ *core.Task) {
				wantER(t, "Sig past max", s.Sig(p), EQOVR)
			})
			e.run()
		}},
		{"4.4.2-twai_sem", "E_TMOUT-and-later-signal-goes-to-count", func(t *testing.T) {
			e := newEnv(t)
			s := mustSem(t, e.kr, "s", 0, 5, 0)
			e.task("hi", 1, func(p *sim.Proc, _ *core.Task) {
				wantER(t, "TWai", s.TWai(p, 40), ETMOUT)
				if p.Now() != 40 {
					t.Errorf("timed out at %v, want 40", p.Now())
				}
			})
			e.isr(100, "sig", func(p *sim.Proc) {
				wantER(t, "Sig", s.Sig(p), EOK)
			})
			e.run()
			// The timed-out waiter left the queue at t=40; the t=100 signal
			// must increment the count, not vanish into a stale waiter.
			if s.Count() != 1 {
				t.Errorf("count after signal = %d, want 1", s.Count())
			}
		}},
		{"4.4.2-pol_sem", "E_TMOUT-when-unavailable", func(t *testing.T) {
			e := newEnv(t)
			s := mustSem(t, e.kr, "s", 0, 5, 0)
			e.task("hi", 1, func(p *sim.Proc, _ *core.Task) {
				start := p.Now()
				wantER(t, "Pol", s.Pol(p), ETMOUT)
				if p.Now() != start {
					t.Error("pol_sem blocked")
				}
			})
			e.run()
		}},
		{"4.4.2-twai_sem", "released-by-rel_wai", func(t *testing.T) {
			e := newEnv(t)
			s := mustSem(t, e.kr, "s", 0, 5, 0)
			var hi *core.Task
			hi = e.task("hi", 1, func(p *sim.Proc, _ *core.Task) {
				wantER(t, "Wai", s.Wai(p), ERLWAI)
				if p.Now() != 35 {
					t.Errorf("released at %v, want 35", p.Now())
				}
			})
			e.task("lo", 5, func(p *sim.Proc, _ *core.Task) {
				e.os.TimeWait(p, 35)
				wantER(t, "RelWai", e.kr.RelWai(p, hi), EOK)
			})
			e.run()
		}},
		// -------------------------------------------------- eventflags
		{"4.5.4-wai_flg", "TWF_ANDW-needs-all-bits", func(t *testing.T) {
			e := newEnv(t)
			f := mustFlg(t, e.kr, "f", TAWMul, 0)
			e.task("hi", 1, func(p *sim.Proc, _ *core.Task) {
				got, er := f.Wai(p, 0b011, TWFAndw)
				wantER(t, "Wai", er, EOK)
				if p.Now() != 30 {
					t.Errorf("released at %v, want 30 (second bit)", p.Now())
				}
				if got&0b011 != 0b011 {
					t.Errorf("release pattern %#b lacks wait bits", got)
				}
			})
			e.isr(10, "set1", func(p *sim.Proc) { f.Set(p, 0b001) })
			e.isr(30, "set2", func(p *sim.Proc) { f.Set(p, 0b010) })
			e.run()
		}},
		{"4.5.4-wai_flg", "TWF_ORW-any-bit-releases", func(t *testing.T) {
			e := newEnv(t)
			f := mustFlg(t, e.kr, "f", TAWMul, 0)
			e.task("hi", 1, func(p *sim.Proc, _ *core.Task) {
				got, er := f.Wai(p, 0b110, TWFOrw)
				wantER(t, "Wai", er, EOK)
				if p.Now() != 20 {
					t.Errorf("released at %v, want 20 (first matching bit)", p.Now())
				}
				if got != 0b010 {
					t.Errorf("release pattern = %#b, want 0b010", got)
				}
			})
			e.isr(20, "set", func(p *sim.Proc) { f.Set(p, 0b010) })
			e.run()
		}},
		{"4.5.4-wai_flg", "E_PAR-on-empty-pattern-or-bad-mode", func(t *testing.T) {
			e := newEnv(t)
			f := mustFlg(t, e.kr, "f", TAWMul, 0)
			e.task("hi", 1, func(p *sim.Proc, _ *core.Task) {
				if _, er := f.Wai(p, 0, TWFOrw); er != EPAR {
					t.Errorf("Wai(waiptn=0) = %v, want E_PAR", er)
				}
				if _, er := f.Wai(p, 1, Mode(99)); er != EPAR {
					t.Errorf("Wai(bad mode) = %v, want E_PAR", er)
				}
			})
			e.run()
		}},
		{"4.5.1-cre_flg", "TA_CLR-clears-pattern-on-release", func(t *testing.T) {
			e := newEnv(t)
			f := mustFlg(t, e.kr, "f", TAWMul|TAClr, 0)
			e.task("hi", 1, func(p *sim.Proc, _ *core.Task) {
				_, er := f.Wai(p, 0b1, TWFOrw)
				wantER(t, "Wai", er, EOK)
			})
			e.isr(10, "set", func(p *sim.Proc) { f.Set(p, 0b11) })
			e.run()
			if f.Pattern() != 0 {
				t.Errorf("pattern after TA_CLR release = %#b, want 0", f.Pattern())
			}
		}},
		{"4.5.4-wai_flg", "E_ILUSE-second-waiter-on-TA_WSGL", func(t *testing.T) {
			e := newEnv(t)
			f := mustFlg(t, e.kr, "f", 0, 0) // TA_WSGL (default)
			e.task("a", 1, func(p *sim.Proc, _ *core.Task) {
				_, er := f.Wai(p, 0b1, TWFOrw)
				wantER(t, "first waiter", er, EOK)
			})
			e.task("b", 2, func(p *sim.Proc, _ *core.Task) {
				e.os.TimeWait(p, 5) // a is already waiting
				if _, er := f.Wai(p, 0b1, TWFOrw); er != EILUSE {
					t.Errorf("second waiter = %v, want E_ILUSE", er)
				}
			})
			e.isr(50, "set", func(p *sim.Proc) { f.Set(p, 0b1) })
			e.run()
		}},
		{"4.5.3-set_flg", "TA_WMUL-releases-waiters-in-queue-order", func(t *testing.T) {
			e := newEnv(t)
			f := mustFlg(t, e.kr, "f", TAWMul, 0)
			var order []string
			waiter := func(name string, after sim.Time, ptn FlagPattern) func(p *sim.Proc, _ *core.Task) {
				return func(p *sim.Proc, _ *core.Task) {
					e.os.TimeWait(p, after)
					_, er := f.Wai(p, ptn, TWFOrw)
					wantER(t, name, er, EOK)
					order = append(order, name)
				}
			}
			// Both waiters match the one set_flg: both are released at t=50
			// (release scan in queue order), then execute in priority order.
			e.task("lo", 5, waiter("lo", 10, 0b1))
			e.task("hi", 1, waiter("hi", 20, 0b1))
			e.isr(50, "set", func(p *sim.Proc) { f.Set(p, 0b1) })
			e.run()
			if len(order) != 2 {
				t.Fatalf("released %d waiters, want 2 (%v)", len(order), order)
			}
			// Both released at t=50; the higher-priority task runs first.
			want := []string{"hi", "lo"}
			for i := range want {
				if order[i] != want[i] {
					t.Fatalf("execution order = %v, want %v", order, want)
				}
			}
		}},
		{"4.5.4-twai_flg", "E_TMOUT-on-expiry", func(t *testing.T) {
			e := newEnv(t)
			f := mustFlg(t, e.kr, "f", TAWMul, 0)
			e.task("hi", 1, func(p *sim.Proc, _ *core.Task) {
				_, er := f.TWai(p, 0b1, TWFOrw, 45)
				wantER(t, "TWai", er, ETMOUT)
				if p.Now() != 45 {
					t.Errorf("timed out at %v, want 45", p.Now())
				}
			})
			e.run()
		}},
		{"4.5.2-clr_flg", "ANDs-the-pattern", func(t *testing.T) {
			e := newEnv(t)
			f := mustFlg(t, e.kr, "f", TAWMul, 0b1111)
			e.task("hi", 1, func(p *sim.Proc, _ *core.Task) {
				wantER(t, "Clr", f.Clr(p, 0b1010), EOK)
				if f.Pattern() != 0b1010 {
					t.Errorf("pattern = %#b, want 0b1010", f.Pattern())
				}
			})
			e.run()
		}},
		{"4.5.4-wai_flg", "satisfied-immediately-without-blocking", func(t *testing.T) {
			e := newEnv(t)
			f := mustFlg(t, e.kr, "f", TAWMul|TAClr, 0b101)
			e.task("hi", 1, func(p *sim.Proc, _ *core.Task) {
				start := p.Now()
				got, er := f.Wai(p, 0b100, TWFOrw)
				wantER(t, "Wai", er, EOK)
				if p.Now() != start {
					t.Error("wai_flg blocked despite satisfied pattern")
				}
				if got != 0b101 {
					t.Errorf("release pattern = %#b, want current 0b101", got)
				}
				if f.Pattern() != 0 {
					t.Errorf("TA_CLR left pattern %#b", f.Pattern())
				}
			})
			e.run()
		}},
		// -------------------------------------------------- mailboxes
		{"4.6.2-snd_mbx", "never-blocks-and-queues-FIFO", func(t *testing.T) {
			e := newEnv(t)
			m := mustMbx(t, e.kr, "m", 0)
			e.task("hi", 1, func(p *sim.Proc, _ *core.Task) {
				start := p.Now()
				wantER(t, "Snd#1", m.Snd(p, Msg{Val: 11}), EOK)
				wantER(t, "Snd#2", m.Snd(p, Msg{Val: 22}), EOK)
				if p.Now() != start {
					t.Error("snd_mbx blocked")
				}
				g1, er := m.Rcv(p)
				wantER(t, "Rcv#1", er, EOK)
				g2, er := m.Rcv(p)
				wantER(t, "Rcv#2", er, EOK)
				if g1.Val != 11 || g2.Val != 22 {
					t.Errorf("FIFO order got %d,%d want 11,22", g1.Val, g2.Val)
				}
			})
			e.run()
		}},
		{"4.6.3-rcv_mbx", "blocks-until-send-direct-handoff", func(t *testing.T) {
			e := newEnv(t)
			m := mustMbx(t, e.kr, "m", 0)
			e.task("hi", 1, func(p *sim.Proc, _ *core.Task) {
				got, er := m.Rcv(p)
				wantER(t, "Rcv", er, EOK)
				if p.Now() != 40 {
					t.Errorf("received at %v, want 40", p.Now())
				}
				if got.Val != 77 {
					t.Errorf("payload = %d, want 77", got.Val)
				}
				if m.Len() != 0 {
					t.Errorf("handoff left %d queued messages", m.Len())
				}
			})
			e.isr(40, "send", func(p *sim.Proc) { m.Snd(p, Msg{Val: 77}) })
			e.run()
		}},
		{"4.6.1-cre_mbx", "TA_MPRI-orders-messages-by-priority", func(t *testing.T) {
			e := newEnv(t)
			m := mustMbx(t, e.kr, "m", TAMPri)
			e.task("hi", 1, func(p *sim.Proc, _ *core.Task) {
				m.Snd(p, Msg{Val: 1, Pri: 8})
				m.Snd(p, Msg{Val: 2, Pri: 3})
				m.Snd(p, Msg{Val: 3, Pri: 8})
				var got []int64
				for i := 0; i < 3; i++ {
					g, er := m.Rcv(p)
					wantER(t, "Rcv", er, EOK)
					got = append(got, g.Val)
				}
				// Pri 3 first; equal priorities stay FIFO.
				if got[0] != 2 || got[1] != 1 || got[2] != 3 {
					t.Errorf("priority order = %v, want [2 1 3]", got)
				}
			})
			e.run()
		}},
		{"4.6.3-trcv_mbx", "E_TMOUT-and-polling", func(t *testing.T) {
			e := newEnv(t)
			m := mustMbx(t, e.kr, "m", 0)
			e.task("hi", 1, func(p *sim.Proc, _ *core.Task) {
				if _, er := m.Pol(p); er != ETMOUT {
					t.Errorf("Pol empty = %v, want E_TMOUT", er)
				}
				if _, er := m.TRcv(p, 30); er != ETMOUT {
					t.Errorf("TRcv = %v, want E_TMOUT", er)
				}
				if p.Now() != 30 {
					t.Errorf("timed out at %v, want 30", p.Now())
				}
			})
			e.run()
		}},
	}

	if len(cases) < 30 {
		t.Fatalf("conformance table has %d cases, want >= 30", len(cases))
	}
	seen := map[string]bool{}
	for _, c := range cases {
		key := c.clause + "/" + c.name
		if seen[key] {
			t.Fatalf("duplicate conformance case %q", key)
		}
		seen[key] = true
		t.Run(key, c.run)
	}
}
