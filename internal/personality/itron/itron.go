// Package itron models a µITRON 4.0 kernel personality on top of the
// shared abstract-RTOS dispatcher (internal/core): the service semantics
// RTK-Spec TRON demonstrates at system level — wakeup counting for
// slp_tsk/wup_tsk, E_TMOUT timed services, eventflags with AND/OR wait
// modes, mailboxes, and FIFO- or priority-ordered object wait queues.
//
// Services follow the µITRON 4.0 specification's naming (transliterated
// to Go: slp_tsk → Kernel.SlpTsk) and return ER codes rather than
// panicking, so conformance tests can pin the specified error semantics
// clause by clause. Scheduling, time accounting and runtime diagnosis
// remain the shared dispatcher's: every object wait registers with the
// wait-for-graph monitor, and all telemetry flows through the usual
// observer hooks.
package itron

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// ER is the µITRON error code type (µITRON 4.0 §2.3). Service calls
// return E_OK (0) on success and a negative code on failure.
type ER int

// µITRON 4.0 standard error codes (Table 2-2) used by this model.
const (
	EOK    ER = 0   // normal completion
	EPAR   ER = -17 // parameter error
	EID    ER = -18 // invalid ID number
	ECTX   ER = -25 // context error (called from non-task context)
	EILUSE ER = -28 // illegal service call use
	EOBJ   ER = -41 // object state error (e.g. wup_tsk on a dormant task)
	ENOEXS ER = -42 // object does not exist
	EQOVR  ER = -43 // queueing overflow (wakeup count > TMAX_WUPCNT)
	ERLWAI ER = -49 // wait released by rel_wai
	ETMOUT ER = -50 // polling failure or timeout
)

func (e ER) String() string {
	switch e {
	case EOK:
		return "E_OK"
	case EPAR:
		return "E_PAR"
	case EID:
		return "E_ID"
	case ECTX:
		return "E_CTX"
	case EILUSE:
		return "E_ILUSE"
	case EOBJ:
		return "E_OBJ"
	case ENOEXS:
		return "E_NOEXS"
	case EQOVR:
		return "E_QOVR"
	case ERLWAI:
		return "E_RLWAI"
	case ETMOUT:
		return "E_TMOUT"
	}
	return fmt.Sprintf("ER(%d)", int(e))
}

// Timeout specifiers (µITRON 4.0 §2.5): TMO_FEVR waits forever, TMO_POL
// polls (a timed service with TMO_POL never blocks; failure is E_TMOUT).
const (
	TMOFevr sim.Time = -1
	TMOPol  sim.Time = 0
)

// Object attributes (µITRON 4.0: TA_TFIFO/TA_TPRI order the task wait
// queue, TA_WSGL/TA_WMUL bound eventflag waiters, TA_CLR clears an
// eventflag when a wait is released, TA_MPRI orders mailbox messages by
// message priority).
type Attr uint

const (
	TATFifo Attr = 0         // wait queue in FIFO order (default)
	TATPri  Attr = 1 << iota // wait queue in task-priority order
	TAWMul                   // eventflag: multiple waiters allowed
	TAClr                    // eventflag: clear pattern on wait release
	TAMPri                   // mailbox: messages ordered by priority
)

// Task priority bounds (µITRON 4.0: 1 is highest; TMAX_TPRI here 255)
// and the wakeup-queueing bound TMAX_WUPCNT.
const (
	TMinTPri    = 1
	TMaxTPri    = 255
	TMaxWupCnt  = 127
	TMaxSemCnt  = 1 << 30
	TMaxFlagBit = 32
)

// Kernel is one µITRON personality instance over a core.OS. All tasks of
// the OS may use its services; per-task µITRON state (wakeup count,
// pending forced release) is attached lazily.
type Kernel struct {
	os   *core.OS
	tcbs map[*core.Task]*tcb
}

// NewKernel attaches a µITRON personality to an OS instance.
func NewKernel(os *core.OS) *Kernel {
	return &Kernel{os: os, tcbs: make(map[*core.Task]*tcb)}
}

// OS returns the underlying dispatcher instance.
func (k *Kernel) OS() *core.OS { return k.os }

// tcb is the µITRON extension of a task control block.
type tcb struct {
	task     *core.Task
	wupcnt   int        // queued wakeup requests (slp_tsk/wup_tsk)
	sleeping bool       // blocked in slp_tsk/tslp_tsk
	relwai   bool       // forcibly released: pending E_RLWAI
	wait     *waitQueue // object wait queue the task is blocked in, if any

	// Per-wait scratch, valid while blocked on the matching object.
	waiptn FlagPattern // eventflag wait pattern
	wfmode Mode        // eventflag wait mode
	relptn FlagPattern // eventflag pattern at release
	msg    Msg         // mailbox handoff slot
}

// tcbOf returns (creating on first use) the µITRON state of a task.
func (k *Kernel) tcbOf(t *core.Task) *tcb {
	tc := k.tcbs[t]
	if tc == nil {
		tc = &tcb{task: t}
		k.tcbs[t] = tc
	}
	return tc
}

// self resolves the calling process to the running task, or E_CTX when
// called from a non-task context (ISR, unbound process) — the µITRON
// rule for task-context-only service calls.
func (k *Kernel) self(p *sim.Proc) (*tcb, ER) {
	t := k.os.Current()
	if t == nil || t.Proc() != p {
		return nil, ECTX
	}
	return k.tcbOf(t), EOK
}

// dormant reports task states µITRON treats as DORMANT (services on a
// dormant task return E_OBJ).
func dormant(t *core.Task) bool {
	s := t.State()
	return s == core.TaskCreated || !s.Alive()
}

// ---------------------------------------------------------------------------
// Task management and timed task services.

// SlpTsk puts the calling task to sleep until a wakeup arrives
// (µITRON 4.0 slp_tsk). A queued wakeup (wupcnt > 0) is consumed
// immediately without blocking.
func (k *Kernel) SlpTsk(p *sim.Proc) ER { return k.TSlpTsk(p, TMOFevr) }

// TSlpTsk is slp_tsk with a timeout (tslp_tsk): E_TMOUT when no wakeup
// arrives within tmo, E_RLWAI when released by RelWai. tmo = TMO_POL
// polls the wakeup queue.
func (k *Kernel) TSlpTsk(p *sim.Proc, tmo sim.Time) ER {
	tc, er := k.self(p)
	if er != EOK {
		return er
	}
	if tc.wupcnt > 0 {
		tc.wupcnt--
		return EOK
	}
	if tmo == TMOPol {
		return ETMOUT
	}
	tc.sleeping = true
	woken := k.os.SuspendTimeout(p, core.TaskSuspended, "task:"+tc.task.Name()+".sleep",
		tmo, func() { tc.sleeping = false })
	tc.sleeping = false
	if tc.relwai {
		tc.relwai = false
		return ERLWAI
	}
	if !woken {
		return ETMOUT
	}
	return EOK
}

// WupTsk wakes a task blocked in slp_tsk/tslp_tsk (wup_tsk). If the task
// is not sleeping, the wakeup is queued (up to TMAX_WUPCNT, then
// E_QOVR); wup_tsk on a dormant task is E_OBJ. Callable from ISRs.
func (k *Kernel) WupTsk(p *sim.Proc, t *core.Task) ER {
	if dormant(t) {
		return EOBJ
	}
	tc := k.tcbOf(t)
	if tc.sleeping {
		tc.sleeping = false
		k.os.Resume(p, t)
		return EOK
	}
	if tc.wupcnt >= TMaxWupCnt {
		return EQOVR
	}
	tc.wupcnt++
	return EOK
}

// CanWup cancels (and returns) the task's queued wakeup count
// (can_wup). A nil t queries the calling task.
func (k *Kernel) CanWup(p *sim.Proc, t *core.Task) (int, ER) {
	if t == nil {
		tc, er := k.self(p)
		if er != EOK {
			return 0, er
		}
		t = tc.task
	}
	if dormant(t) {
		return 0, EOBJ
	}
	tc := k.tcbOf(t)
	n := tc.wupcnt
	tc.wupcnt = 0
	return n, EOK
}

// ChgPri changes a task's base priority (chg_pri): E_PAR outside
// [TMinTPri, TMaxTPri], E_OBJ on a dormant task. The change takes
// scheduling effect immediately — a ready task is re-ranked in place
// (exercising the indexed ready queue's re-key hook), a running task
// may be preempted, and a task blocked in a TA_TPRI wait queue is
// re-ordered within it.
func (k *Kernel) ChgPri(p *sim.Proc, t *core.Task, pri int) ER {
	if pri < TMinTPri || pri > TMaxTPri {
		return EPAR
	}
	if dormant(t) {
		return EOBJ
	}
	k.chgPriAny(p, t, pri)
	return EOK
}

// chgPriAny is ChgPri without the µITRON range restriction — the
// personality adapter uses it for scenario tasks whose priorities come
// from the shared generator and may fall outside µITRON's band.
func (k *Kernel) chgPriAny(p *sim.Proc, t *core.Task, pri int) {
	t.SetPriority(pri) // re-keys the ready queue if queued
	if tc := k.tcbs[t]; tc != nil && tc.wait != nil {
		tc.wait.requeue(tc)
	}
	k.os.Reschedule(p)
}

// GetPri returns a task's current priority (get_pri).
func (k *Kernel) GetPri(t *core.Task) (int, ER) {
	if dormant(t) {
		return 0, EOBJ
	}
	return t.Priority(), EOK
}

// DlyTsk delays the calling task for d (dly_tsk). Unlike modeled
// execution time (TimeWait), the delay is idle waiting: the CPU is
// released for the whole interval, and the wait is releasable by RelWai
// (E_RLWAI). A wakeup (wup_tsk) does not release a delay; it queues.
func (k *Kernel) DlyTsk(p *sim.Proc, d sim.Time) ER {
	tc, er := k.self(p)
	if er != EOK {
		return er
	}
	if d < 0 {
		return EPAR
	}
	k.os.SuspendTimeout(p, core.TaskWaitingTime, "task:"+tc.task.Name()+".delay", d, nil)
	if tc.relwai {
		tc.relwai = false
		return ERLWAI
	}
	return EOK
}

// RelWai forcibly releases another task from any wait state (rel_wai):
// the blocked service call returns E_RLWAI. E_OBJ if the task is not
// waiting.
func (k *Kernel) RelWai(p *sim.Proc, t *core.Task) ER {
	if dormant(t) {
		return EOBJ
	}
	tc := k.tcbOf(t)
	waiting := tc.sleeping || tc.wait != nil ||
		t.State() == core.TaskWaitingTime && t != k.os.Current()
	if !waiting {
		return EOBJ
	}
	tc.relwai = true
	tc.sleeping = false
	if tc.wait != nil {
		tc.wait.remove(tc)
	}
	k.os.Resume(p, t)
	return EOK
}

// ExtTsk terminates the calling task (ext_tsk).
func (k *Kernel) ExtTsk(p *sim.Proc) {
	k.os.TaskTerminate(p)
}
