package osek

import (
	"repro/internal/core"
	"repro/internal/sim"
)

// EventMask is a bit mask of per-task events (OSEK OS 2.2.3 §7). Events
// belong to extended tasks: each extended task owns its event set, and
// only ECC1 systems have extended tasks.
type EventMask uint32

// SetEvent sets events of an extended task (§13.5.3.1) and releases it
// when it is waiting on any of them. E_OS_ID for an invalid task,
// E_OS_ACCESS for a basic task, E_OS_STATE for a suspended task.
// Callable from task and interrupt level.
func (s *System) SetEvent(p *sim.Proc, id TaskID, mask EventMask) StatusType {
	tc, ok := s.tcb(id)
	if !ok {
		return EOsID
	}
	if !tc.decl.Extended {
		return EOsAccess
	}
	if tc.task.Proc() == nil || tc.suspended() && !tc.inWait {
		return EOsState
	}
	tc.events |= mask
	if tc.inWait && tc.events&tc.waiting != 0 {
		tc.inWait = false
		s.os.Resume(p, tc.task)
	}
	return EOk
}

// ClearEvent clears events of the calling extended task (§13.5.3.2):
// E_OS_ACCESS from a basic task, E_OS_CALLEVEL at interrupt level.
func (s *System) ClearEvent(p *sim.Proc, mask EventMask) StatusType {
	tc := s.currentTCB(p)
	if tc == nil {
		return EOsCallevel
	}
	if !tc.decl.Extended {
		return EOsAccess
	}
	tc.events &^= mask
	return EOk
}

// GetEvent returns the current event set of an extended task
// (§13.5.3.3).
func (s *System) GetEvent(id TaskID) (EventMask, StatusType) {
	tc, ok := s.tcb(id)
	if !ok {
		return 0, EOsID
	}
	if !tc.decl.Extended {
		return 0, EOsAccess
	}
	if tc.task.Proc() == nil || tc.suspended() && !tc.inWait {
		return 0, EOsState
	}
	return tc.events, EOk
}

// WaitEvent transfers the calling extended task into the WAITING state
// until at least one event of mask is set (§13.5.3.4). An already-set
// event returns immediately. E_OS_ACCESS for a basic task,
// E_OS_RESOURCE while occupying a resource (waiting with a held
// resource would defeat the ceiling protocol), E_OS_CALLEVEL at
// interrupt level.
func (s *System) WaitEvent(p *sim.Proc, mask EventMask) StatusType {
	tc := s.currentTCB(p)
	if tc == nil {
		return EOsCallevel
	}
	if !tc.decl.Extended {
		return EOsAccess
	}
	if len(tc.resStack) > 0 {
		return EOsResource
	}
	if tc.events&mask != 0 {
		return EOk
	}
	tc.waiting = mask
	tc.inWait = true
	s.os.Suspend(p, core.TaskWaitingEvent, "event:"+tc.decl.Name)
	tc.inWait = false
	return EOk
}
