// OSEK OS 2.2.3 conformance suite: table-driven, service-by-service
// tests keyed to specification clauses (section numbers of the OSEK/VDX
// Operating System specification 2.2.3; schedule-table cases reference
// the AUTOSAR OS SWS). Each case pins one specified behavior — status
// codes, activation queueing, ceiling-protocol scheduling, event and
// alarm semantics — against the personality running on the shared
// dispatcher.
package osek

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// env is the per-case fixture: one simulation kernel, one OS under the
// fixed-priority policy, one OSEK system of the case's conformance class.
type env struct {
	t   *testing.T
	k   *sim.Kernel
	os  *core.OS
	sys *System
}

func newEnv(t *testing.T, class Class) *env {
	t.Helper()
	k := sim.NewKernel()
	t.Cleanup(k.Shutdown)
	os := core.New(k, "ECU", core.PriorityPolicy{})
	os.Init()
	return &env{t: t, k: k, os: os, sys: NewSystem(os, class)}
}

// task declares a task, failing the test on a declaration error.
func (e *env) task(d TaskDecl, body func(p *sim.Proc)) TaskID {
	e.t.Helper()
	id, st := e.sys.DeclareTask(d, body)
	if st != EOk {
		e.t.Fatalf("DeclareTask(%s) = %v", d.Name, st)
	}
	return id
}

// isr runs fn as an interrupt handler at simulated time `when`.
func (e *env) isr(when sim.Time, name string, fn func(p *sim.Proc)) {
	pr := e.k.Spawn(name, func(p *sim.Proc) {
		p.WaitFor(when)
		e.os.InterruptEnter(p, name)
		fn(p)
		e.os.InterruptReturn(p, name)
	})
	pr.SetDaemon(true)
}

// run starts the system and runs the simulation until it drains or the
// horizon is reached (counters tick forever, so alarm cases need the
// bound).
func (e *env) run() { e.runUntil(1_000_000) }

func (e *env) runUntil(h sim.Time) {
	e.t.Helper()
	e.sys.Start()
	if err := e.k.RunUntil(h); err != nil {
		e.t.Fatal(err)
	}
	if d := e.os.Diagnosis(); d != nil {
		e.t.Fatal(d)
	}
}

func wantSt(t *testing.T, what string, got, want StatusType) {
	t.Helper()
	if got != want {
		t.Errorf("%s = %v, want %v", what, got, want)
	}
}

// mustRes declares a resource, failing the test on an error.
func mustRes(t *testing.T, s *System, name string, accessors ...TaskID) ResID {
	t.Helper()
	id, st := s.DeclareResource(name, accessors...)
	if st != EOk {
		t.Fatalf("DeclareResource(%s) = %v", name, st)
	}
	return id
}

// TestOSEKConformance is the OSEK OS 2.2.3 conformance table. Case names
// are "<spec clause>/<behavior>".
func TestOSEKConformance(t *testing.T) {
	cases := []struct {
		clause string // OSEK OS 2.2.3 (or AUTOSAR OS SWS) section
		name   string
		run    func(t *testing.T)
	}{
		// ------------------------------------------------------ task management
		{"13.2.3.1-ActivateTask", "suspended-task-preempts-lower-caller", func(t *testing.T) {
			e := newEnv(t, BCC1)
			var bStart sim.Time = -1
			var hi TaskID
			e.task(TaskDecl{Name: "lo", Prio: 5, Autostart: true}, func(p *sim.Proc) {
				e.os.TimeWait(p, 10)
				wantSt(t, "ActivateTask(hi)", e.sys.ActivateTask(p, hi), EOk)
				// hi (higher priority) preempted us here and already ran.
				if bStart != 10 {
					t.Errorf("hi had not run when control returned (start=%v)", bStart)
				}
			})
			hi = e.task(TaskDecl{Name: "hi", Prio: 1}, func(p *sim.Proc) {
				bStart = p.Now()
			})
			e.run()
			if bStart != 10 {
				t.Errorf("hi started at %v, want 10", bStart)
			}
		}},
		{"13.2.3.1-ActivateTask", "E_OS_ID-invalid-task", func(t *testing.T) {
			e := newEnv(t, BCC1)
			e.task(TaskDecl{Name: "a", Prio: 5, Autostart: true}, func(p *sim.Proc) {
				wantSt(t, "ActivateTask(99)", e.sys.ActivateTask(p, 99), EOsID)
			})
			e.run()
		}},
		{"13.2.3.1-ActivateTask", "BCC1-E_OS_LIMIT-second-activation", func(t *testing.T) {
			e := newEnv(t, BCC1)
			var lo TaskID
			e.task(TaskDecl{Name: "hi", Prio: 1, Autostart: true}, func(p *sim.Proc) {
				e.os.TimeWait(p, 5)
				wantSt(t, "first ActivateTask", e.sys.ActivateTask(p, lo), EOk)
				// lo is READY (we outrank it): a second activation exceeds the
				// BCC1 bound of one.
				wantSt(t, "second ActivateTask", e.sys.ActivateTask(p, lo), EOsLimit)
			})
			lo = e.task(TaskDecl{Name: "lo", Prio: 5}, func(p *sim.Proc) {})
			e.run()
		}},
		{"13.2.3.1-ActivateTask", "BCC2-queues-up-to-MaxActivations", func(t *testing.T) {
			e := newEnv(t, BCC2)
			runs := 0
			var lo TaskID
			e.task(TaskDecl{Name: "hi", Prio: 1, Autostart: true}, func(p *sim.Proc) {
				e.os.TimeWait(p, 5)
				for i := 0; i < 3; i++ {
					wantSt(t, "ActivateTask", e.sys.ActivateTask(p, lo), EOk)
				}
				wantSt(t, "4th ActivateTask", e.sys.ActivateTask(p, lo), EOsLimit)
			})
			lo = e.task(TaskDecl{Name: "lo", Prio: 5, MaxActivations: 3}, func(p *sim.Proc) {
				runs++
				e.os.TimeWait(p, 2)
			})
			e.run()
			if runs != 3 {
				t.Errorf("queued activations ran %d times, want 3", runs)
			}
			if got := e.sys.tasks[lo].task.Activations(); got != 3 {
				t.Errorf("Activations() = %d, want 3", got)
			}
		}},
		{"4.6.1-events", "activation-clears-pending-events", func(t *testing.T) {
			e := newEnv(t, ECC1)
			var ext TaskID
			first := true
			var second EventMask = 0xff
			ext = e.task(TaskDecl{Name: "ext", Prio: 1, Extended: true, Autostart: true}, func(p *sim.Proc) {
				if first {
					first = false
					wantSt(t, "SetEvent(self)", e.sys.SetEvent(p, ext, 0x4), EOk)
					return // terminates with event 0x4 still set
				}
				second, _ = e.sys.GetEvent(ext)
			})
			e.task(TaskDecl{Name: "lo", Prio: 5, Autostart: true}, func(p *sim.Proc) {
				wantSt(t, "re-ActivateTask", e.sys.ActivateTask(p, ext), EOk)
			})
			e.run()
			if second != 0 {
				t.Errorf("event set after re-activation = %#x, want 0 (cleared)", second)
			}
		}},
		{"4.6.5-FullPreemptive", "preempted-task-is-oldest-at-its-priority", func(t *testing.T) {
			// "A preempted task is considered to be the first (oldest)
			// task in the ready list of its current priority": with three
			// tasks sharing one priority, the preempted one must resume
			// ahead of the two that were already queued behind it.
			e := newEnv(t, BCC2)
			var order []string
			log := func(s string) { order = append(order, s) }
			var b, c, h TaskID
			e.task(TaskDecl{Name: "a", Prio: 5, Autostart: true}, func(p *sim.Proc) {
				log("a:run")
				wantSt(t, "ActivateTask(b)", e.sys.ActivateTask(p, b), EOk)
				wantSt(t, "ActivateTask(c)", e.sys.ActivateTask(p, c), EOk)
				e.os.TimeWait(p, 10)
				// h preempts at the activation point; when it terminates, a
				// must be dispatched again before b and c.
				wantSt(t, "ActivateTask(h)", e.sys.ActivateTask(p, h), EOk)
				log("a:resume")
				e.os.TimeWait(p, 10)
			})
			b = e.task(TaskDecl{Name: "b", Prio: 5}, func(p *sim.Proc) { log("b:run") })
			c = e.task(TaskDecl{Name: "c", Prio: 5}, func(p *sim.Proc) { log("c:run") })
			h = e.task(TaskDecl{Name: "h", Prio: 1}, func(p *sim.Proc) {
				log("h:run")
				e.os.TimeWait(p, 5)
			})
			e.run()
			want := []string{"a:run", "h:run", "a:resume", "b:run", "c:run"}
			if !reflect.DeepEqual(order, want) {
				t.Errorf("execution order = %v, want %v", order, want)
			}
		}},
		{"4.6.5-FullPreemptive", "isr-preemption-keeps-oldest-position", func(t *testing.T) {
			// Same clause via the interrupt path: an ISR activates the
			// high-priority task while a computes; a yields at its next
			// scheduling point and must still resume ahead of its
			// same-priority peers.
			e := newEnv(t, BCC2)
			var order []string
			log := func(s string) { order = append(order, s) }
			var b, c, h TaskID
			e.task(TaskDecl{Name: "a", Prio: 5, Autostart: true}, func(p *sim.Proc) {
				log("a:run")
				wantSt(t, "ActivateTask(b)", e.sys.ActivateTask(p, b), EOk)
				wantSt(t, "ActivateTask(c)", e.sys.ActivateTask(p, c), EOk)
				e.os.TimeWait(p, 10) // ISR fires at 5; a yields to h at 10
				log("a:resume")
				e.os.TimeWait(p, 10)
			})
			b = e.task(TaskDecl{Name: "b", Prio: 5}, func(p *sim.Proc) { log("b:run") })
			c = e.task(TaskDecl{Name: "c", Prio: 5}, func(p *sim.Proc) { log("c:run") })
			h = e.task(TaskDecl{Name: "h", Prio: 1}, func(p *sim.Proc) { log("h:run") })
			e.isr(5, "irq", func(p *sim.Proc) {
				wantSt(t, "ISR ActivateTask(h)", e.sys.ActivateTask(p, h), EOk)
			})
			e.run()
			want := []string{"a:run", "h:run", "a:resume", "b:run", "c:run"}
			if !reflect.DeepEqual(order, want) {
				t.Errorf("execution order = %v, want %v", order, want)
			}
		}},
		{"4.6.5-FullPreemptive", "waiting-task-re-enters-as-newest", func(t *testing.T) {
			// The contrast half of the clause: only *preemption* grants the
			// oldest position. A task that left RUNNING voluntarily
			// (WaitEvent) re-enters its priority level as the newest task
			// and runs after peers that queued while it waited.
			e := newEnv(t, ECC1)
			var order []string
			log := func(s string) { order = append(order, s) }
			var w, b, c TaskID
			w = e.task(TaskDecl{Name: "w", Prio: 5, Extended: true, Autostart: true}, func(p *sim.Proc) {
				log("w:run")
				wantSt(t, "ActivateTask(b)", e.sys.ActivateTask(p, b), EOk)
				wantSt(t, "WaitEvent", e.sys.WaitEvent(p, 0x1), EOk)
				log("w:resume")
			})
			b = e.task(TaskDecl{Name: "b", Prio: 5}, func(p *sim.Proc) {
				log("b:run")
				wantSt(t, "ActivateTask(c)", e.sys.ActivateTask(p, c), EOk)
				e.os.TimeWait(p, 10) // ISR releases w at 5: w queues behind c
			})
			c = e.task(TaskDecl{Name: "c", Prio: 5}, func(p *sim.Proc) { log("c:run") })
			e.isr(5, "irq", func(p *sim.Proc) {
				wantSt(t, "ISR SetEvent(w)", e.sys.SetEvent(p, w, 0x1), EOk)
			})
			e.run()
			want := []string{"w:run", "b:run", "c:run", "w:resume"}
			if !reflect.DeepEqual(order, want) {
				t.Errorf("execution order = %v, want %v", order, want)
			}
		}},
		{"13.2.3.2-TerminateTask", "ends-in-SUSPENDED", func(t *testing.T) {
			e := newEnv(t, BCC1)
			var hi TaskID
			e.task(TaskDecl{Name: "lo", Prio: 5, Autostart: true}, func(p *sim.Proc) {
				wantSt(t, "ActivateTask", e.sys.ActivateTask(p, hi), EOk)
				// hi preempted, ran, terminated.
				st, rc := e.sys.GetTaskState(hi)
				wantSt(t, "GetTaskState", rc, EOk)
				if st != Suspended {
					t.Errorf("state after TerminateTask = %v, want SUSPENDED", st)
				}
			})
			hi = e.task(TaskDecl{Name: "hi", Prio: 1}, func(p *sim.Proc) {
				e.os.TimeWait(p, 3)
				wantSt(t, "TerminateTask", e.sys.TerminateTask(p), EOk)
			})
			e.run()
		}},
		{"13.2.3.2-TerminateTask", "E_OS_RESOURCE-while-occupying", func(t *testing.T) {
			e := newEnv(t, BCC1)
			var a TaskID
			a = e.task(TaskDecl{Name: "a", Prio: 5, Autostart: true}, func(p *sim.Proc) {})
			r := mustRes(t, e.sys, "r", a)
			e.sys.tasks[a].body = func(p *sim.Proc) {
				wantSt(t, "GetResource", e.sys.GetResource(p, r), EOk)
				wantSt(t, "TerminateTask holding r", e.sys.TerminateTask(p), EOsResource)
				wantSt(t, "ReleaseResource", e.sys.ReleaseResource(p, r), EOk)
			}
			e.run()
		}},
		{"13.2.3.2-TerminateTask", "E_OS_CALLEVEL-at-interrupt-level", func(t *testing.T) {
			e := newEnv(t, BCC1)
			e.task(TaskDecl{Name: "a", Prio: 5, Autostart: true}, func(p *sim.Proc) {
				e.os.TimeWait(p, 20)
			})
			e.isr(10, "irq", func(p *sim.Proc) {
				wantSt(t, "TerminateTask from ISR", e.sys.TerminateTask(p), EOsCallevel)
			})
			e.run()
		}},
		{"4.7-implicit-terminate", "body-return-ends-activation", func(t *testing.T) {
			e := newEnv(t, BCC1)
			runs := 0
			var a TaskID
			a = e.task(TaskDecl{Name: "a", Prio: 5, Autostart: true}, func(p *sim.Proc) {
				runs++
			})
			// b runs below a: a's first activation has finished (and parked in
			// SUSPENDED) before b re-activates it.
			e.task(TaskDecl{Name: "b", Prio: 9, Autostart: true}, func(p *sim.Proc) {
				e.os.TimeWait(p, 5)
				wantSt(t, "re-ActivateTask", e.sys.ActivateTask(p, a), EOk)
			})
			e.run()
			if runs != 2 {
				t.Errorf("body ran %d times, want 2 (return = implicit TerminateTask)", runs)
			}
			if got := e.sys.tasks[a].task.Activations(); got != 2 {
				t.Errorf("Activations() = %d, want 2", got)
			}
		}},
		{"13.2.3.3-ChainTask", "terminates-and-activates-successor", func(t *testing.T) {
			e := newEnv(t, BCC1)
			var bStart sim.Time = -1
			var b TaskID
			e.task(TaskDecl{Name: "a", Prio: 1, Autostart: true}, func(p *sim.Proc) {
				e.os.TimeWait(p, 10)
				wantSt(t, "ChainTask", e.sys.ChainTask(p, b), EOk)
			})
			b = e.task(TaskDecl{Name: "b", Prio: 5}, func(p *sim.Proc) {
				bStart = p.Now()
			})
			e.run()
			if bStart != 10 {
				t.Errorf("successor started at %v, want 10 (at the chain point)", bStart)
			}
		}},
		{"13.2.3.3-ChainTask", "self-chain-requeues-caller", func(t *testing.T) {
			e := newEnv(t, BCC1)
			runs := 0
			var a TaskID
			a = e.task(TaskDecl{Name: "a", Prio: 5, Autostart: true}, func(p *sim.Proc) {
				runs++
				if runs == 1 {
					wantSt(t, "ChainTask(self)", e.sys.ChainTask(p, a), EOk)
				}
			})
			e.run()
			if runs != 2 {
				t.Errorf("self-chained task ran %d times, want 2", runs)
			}
		}},
		{"13.2.3.3-ChainTask", "E_OS_LIMIT-leaves-caller-running", func(t *testing.T) {
			e := newEnv(t, BCC1)
			ranAfter := false
			var b TaskID
			e.task(TaskDecl{Name: "a", Prio: 1, Autostart: true}, func(p *sim.Proc) {
				wantSt(t, "ActivateTask(b)", e.sys.ActivateTask(p, b), EOk)
				// b is READY: chaining it exceeds its activation bound, and the
				// caller must NOT be terminated.
				wantSt(t, "ChainTask(b)", e.sys.ChainTask(p, b), EOsLimit)
				if st, _ := e.sys.GetTaskState(0); st != Running {
					t.Errorf("caller state after failed chain = %v, want RUNNING", st)
				}
				ranAfter = true
			})
			b = e.task(TaskDecl{Name: "b", Prio: 5}, func(p *sim.Proc) {})
			e.run()
			if !ranAfter {
				t.Error("caller did not continue after E_OS_LIMIT")
			}
		}},
		{"13.2.3.3-ChainTask", "E_OS_ID-invalid-successor", func(t *testing.T) {
			e := newEnv(t, BCC1)
			e.task(TaskDecl{Name: "a", Prio: 5, Autostart: true}, func(p *sim.Proc) {
				wantSt(t, "ChainTask(99)", e.sys.ChainTask(p, 99), EOsID)
			})
			e.run()
		}},
		{"13.2.3.4-Schedule", "scheduling-point-of-non-preemptable-task", func(t *testing.T) {
			e := newEnv(t, BCC1)
			var hiStart sim.Time = -1
			var hi TaskID
			e.task(TaskDecl{Name: "np", Prio: 5, NonPreemptable: true, Autostart: true}, func(p *sim.Proc) {
				e.os.TimeWait(p, 10) // hi activated at t=5: no preemption
				e.os.TimeWait(p, 10)
				wantSt(t, "Schedule", e.sys.Schedule(p), EOk) // hi runs here
				if hiStart != 20 {
					t.Errorf("hi had not run after Schedule (start=%v)", hiStart)
				}
			})
			hi = e.task(TaskDecl{Name: "hi", Prio: 1}, func(p *sim.Proc) {
				hiStart = p.Now()
			})
			e.isr(5, "irq", func(p *sim.Proc) { e.sys.ActivateTask(p, hi) })
			e.run()
			if hiStart != 20 {
				t.Errorf("hi started at %v, want 20 (the explicit Schedule point)", hiStart)
			}
		}},
		{"13.2.3.4-Schedule", "E_OS_RESOURCE-while-occupying", func(t *testing.T) {
			e := newEnv(t, BCC1)
			var a TaskID
			a = e.task(TaskDecl{Name: "a", Prio: 5, Autostart: true}, func(p *sim.Proc) {})
			r := mustRes(t, e.sys, "r", a)
			e.sys.tasks[a].body = func(p *sim.Proc) {
				wantSt(t, "GetResource", e.sys.GetResource(p, r), EOk)
				wantSt(t, "Schedule holding r", e.sys.Schedule(p), EOsResource)
				wantSt(t, "ReleaseResource", e.sys.ReleaseResource(p, r), EOk)
			}
			e.run()
		}},
		{"13.2.3.5-GetTaskID", "self-id-and-INVALID_TASK-from-ISR", func(t *testing.T) {
			e := newEnv(t, BCC1)
			var a TaskID
			a = e.task(TaskDecl{Name: "a", Prio: 5, Autostart: true}, func(p *sim.Proc) {
				id, rc := e.sys.GetTaskID(p)
				wantSt(t, "GetTaskID", rc, EOk)
				if id != a {
					t.Errorf("GetTaskID = %d, want %d", id, a)
				}
				e.os.TimeWait(p, 20)
			})
			e.isr(10, "irq", func(p *sim.Proc) {
				if id, _ := e.sys.GetTaskID(p); id != -1 {
					t.Errorf("GetTaskID at interrupt level = %d, want -1 (INVALID_TASK)", id)
				}
			})
			e.run()
		}},
		{"13.2.3.6-GetTaskState", "all-four-states", func(t *testing.T) {
			e := newEnv(t, ECC1)
			var self, ready, susp, waiting TaskID
			// waiting has the highest priority: it runs first at t=0 and
			// blocks in WaitEvent before self's body checks the states.
			waiting = e.task(TaskDecl{Name: "waiting", Prio: 0, Extended: true, Autostart: true}, func(p *sim.Proc) {
				wantSt(t, "WaitEvent", e.sys.WaitEvent(p, 0x1), EOk)
			})
			self = e.task(TaskDecl{Name: "self", Prio: 1, Autostart: true}, func(p *sim.Proc) {
				check := func(id TaskID, want TaskStateType) {
					got, rc := e.sys.GetTaskState(id)
					wantSt(t, "GetTaskState", rc, EOk)
					if got != want {
						t.Errorf("state(%d) = %v, want %v", id, got, want)
					}
				}
				wantSt(t, "ActivateTask(ready)", e.sys.ActivateTask(p, ready), EOk)
				check(self, Running)
				check(ready, Ready)
				check(susp, Suspended)
				check(waiting, Waiting)
				wantSt(t, "SetEvent(waiting)", e.sys.SetEvent(p, waiting, 0x1), EOk)
			})
			ready = e.task(TaskDecl{Name: "ready", Prio: 5}, func(p *sim.Proc) {})
			susp = e.task(TaskDecl{Name: "susp", Prio: 6}, func(p *sim.Proc) {})
			if _, st := e.sys.GetTaskState(99); st != EOsID {
				t.Errorf("GetTaskState(99) = %v, want E_OS_ID", st)
			}
			e.run()
		}},

		// -------------------------------------------------- conformance classes
		{"3-conformance-classes", "extended-task-needs-ECC1", func(t *testing.T) {
			e := newEnv(t, BCC1)
			if _, st := e.sys.DeclareTask(TaskDecl{Name: "x", Prio: 1, Extended: true}, func(p *sim.Proc) {}); st != EOsAccess {
				t.Errorf("DeclareTask(extended, BCC1) = %v, want E_OS_ACCESS", st)
			}
		}},
		{"3-conformance-classes", "multiple-activations-need-BCC2", func(t *testing.T) {
			e := newEnv(t, BCC1)
			if _, st := e.sys.DeclareTask(TaskDecl{Name: "x", Prio: 1, MaxActivations: 2}, func(p *sim.Proc) {}); st != EOsValue {
				t.Errorf("DeclareTask(2 activations, BCC1) = %v, want E_OS_VALUE", st)
			}
			e2 := newEnv(t, ECC1)
			if _, st := e2.sys.DeclareTask(TaskDecl{Name: "x", Prio: 1, Extended: true, MaxActivations: 2}, func(p *sim.Proc) {}); st != EOsValue {
				t.Errorf("DeclareTask(extended, 2 activations) = %v, want E_OS_VALUE", st)
			}
		}},

		// ------------------------------------------- resources (ceiling protocol)
		{"13.4.3.1-GetResource", "ceiling-boost-defers-contender", func(t *testing.T) {
			e := newEnv(t, BCC1)
			var hiStart sim.Time = -1
			var lo, hi TaskID
			lo = e.task(TaskDecl{Name: "lo", Prio: 10, Autostart: true}, func(p *sim.Proc) {})
			hi = e.task(TaskDecl{Name: "hi", Prio: 1}, func(p *sim.Proc) {
				hiStart = p.Now()
			})
			r := mustRes(t, e.sys, "r", lo, hi) // ceiling = 1 (hi's priority)
			e.sys.tasks[lo].body = func(p *sim.Proc) {
				wantSt(t, "GetResource", e.sys.GetResource(p, r), EOk)
				e.os.TimeWait(p, 30) // hi activated at t=10: ceiling keeps us running
				wantSt(t, "ReleaseResource", e.sys.ReleaseResource(p, r), EOk)
				// The release restored our base priority: hi preempted here.
				if hiStart != 30 {
					t.Errorf("hi had not run after release (start=%v)", hiStart)
				}
			}
			e.isr(10, "irq", func(p *sim.Proc) { e.sys.ActivateTask(p, hi) })
			e.run()
			if hiStart != 30 {
				t.Errorf("contender started at %v, want 30 (after the release)", hiStart)
			}
		}},
		{"13.4.3.1-GetResource", "E_OS_ID-invalid-resource", func(t *testing.T) {
			e := newEnv(t, BCC1)
			e.task(TaskDecl{Name: "a", Prio: 5, Autostart: true}, func(p *sim.Proc) {
				wantSt(t, "GetResource(99)", e.sys.GetResource(p, 99), EOsID)
			})
			e.run()
		}},
		{"13.4.3.1-GetResource", "E_OS_ACCESS-not-an-accessor", func(t *testing.T) {
			e := newEnv(t, BCC1)
			var a, b TaskID
			a = e.task(TaskDecl{Name: "a", Prio: 5, Autostart: true}, func(p *sim.Proc) {})
			b = e.task(TaskDecl{Name: "b", Prio: 6}, func(p *sim.Proc) {})
			r := mustRes(t, e.sys, "r", b)
			e.sys.tasks[a].body = func(p *sim.Proc) {
				wantSt(t, "GetResource as non-accessor", e.sys.GetResource(p, r), EOsAccess)
			}
			e.run()
		}},
		{"13.4.3.1-GetResource", "E_OS_ACCESS-nested-reentry", func(t *testing.T) {
			e := newEnv(t, BCC1)
			var a TaskID
			a = e.task(TaskDecl{Name: "a", Prio: 5, Autostart: true}, func(p *sim.Proc) {})
			r := mustRes(t, e.sys, "r", a)
			e.sys.tasks[a].body = func(p *sim.Proc) {
				wantSt(t, "GetResource", e.sys.GetResource(p, r), EOk)
				wantSt(t, "re-entrant GetResource", e.sys.GetResource(p, r), EOsAccess)
				wantSt(t, "ReleaseResource", e.sys.ReleaseResource(p, r), EOk)
			}
			e.run()
		}},
		{"13.4.3.2-ReleaseResource", "E_OS_NOFUNC-not-occupied", func(t *testing.T) {
			e := newEnv(t, BCC1)
			var a TaskID
			a = e.task(TaskDecl{Name: "a", Prio: 5, Autostart: true}, func(p *sim.Proc) {})
			r := mustRes(t, e.sys, "r", a)
			e.sys.tasks[a].body = func(p *sim.Proc) {
				wantSt(t, "ReleaseResource unheld", e.sys.ReleaseResource(p, r), EOsNofunc)
			}
			e.run()
		}},
		{"13.4.3.2-ReleaseResource", "LIFO-nesting-enforced", func(t *testing.T) {
			e := newEnv(t, BCC1)
			var a TaskID
			a = e.task(TaskDecl{Name: "a", Prio: 5, Autostart: true}, func(p *sim.Proc) {})
			r1 := mustRes(t, e.sys, "r1", a)
			r2 := mustRes(t, e.sys, "r2", a)
			e.sys.tasks[a].body = func(p *sim.Proc) {
				wantSt(t, "GetResource(r1)", e.sys.GetResource(p, r1), EOk)
				wantSt(t, "GetResource(r2)", e.sys.GetResource(p, r2), EOk)
				wantSt(t, "ReleaseResource(r1) out of order", e.sys.ReleaseResource(p, r1), EOsNofunc)
				wantSt(t, "ReleaseResource(r2)", e.sys.ReleaseResource(p, r2), EOk)
				wantSt(t, "ReleaseResource(r1)", e.sys.ReleaseResource(p, r1), EOk)
			}
			e.run()
		}},
		{"8.5-OSEK_PRIORITY_CEILING", "prevents-priority-inversion", func(t *testing.T) {
			e := newEnv(t, BCC1)
			var seq []string
			var lo, mid, hi TaskID
			lo = e.task(TaskDecl{Name: "lo", Prio: 10, Autostart: true}, func(p *sim.Proc) {})
			mid = e.task(TaskDecl{Name: "mid", Prio: 5}, func(p *sim.Proc) {
				seq = append(seq, "mid")
				e.os.TimeWait(p, 5)
			})
			hi = e.task(TaskDecl{Name: "hi", Prio: 1}, func(p *sim.Proc) {})
			r := mustRes(t, e.sys, "r", lo, hi) // ceiling = hi's priority
			e.sys.tasks[lo].body = func(p *sim.Proc) {
				wantSt(t, "lo GetResource", e.sys.GetResource(p, r), EOk)
				seq = append(seq, "lo-cs")
				e.os.TimeWait(p, 30)
				wantSt(t, "lo ReleaseResource", e.sys.ReleaseResource(p, r), EOk)
			}
			e.sys.tasks[hi].body = func(p *sim.Proc) {
				wantSt(t, "hi GetResource", e.sys.GetResource(p, r), EOk)
				seq = append(seq, "hi-cs")
				e.os.TimeWait(p, 10)
				wantSt(t, "hi ReleaseResource", e.sys.ReleaseResource(p, r), EOk)
			}
			// The unbounded-inversion shape: mid becomes ready while lo holds
			// the resource hi needs. Under the ceiling protocol lo already
			// runs at hi's priority, so mid cannot lengthen hi's blocking.
			e.isr(10, "irq-mid", func(p *sim.Proc) { e.sys.ActivateTask(p, mid) })
			e.isr(12, "irq-hi", func(p *sim.Proc) { e.sys.ActivateTask(p, hi) })
			e.run()
			want := []string{"lo-cs", "hi-cs", "mid"}
			if !reflect.DeepEqual(seq, want) {
				t.Errorf("execution order = %v, want %v", seq, want)
			}
		}},
		{"8.5-OSEK_PRIORITY_CEILING", "opposite-order-nesting-cannot-deadlock", func(t *testing.T) {
			e := newEnv(t, BCC1)
			done := 0
			var a, b TaskID
			a = e.task(TaskDecl{Name: "a", Prio: 5, Autostart: true}, func(p *sim.Proc) {})
			b = e.task(TaskDecl{Name: "b", Prio: 4}, func(p *sim.Proc) {})
			r1 := mustRes(t, e.sys, "r1", a, b)
			r2 := mustRes(t, e.sys, "r2", a, b)
			// a and b nest r1/r2 in opposite orders — the classic deadlock
			// shape. The ceiling boost makes each critical section atomic
			// with respect to the other accessor, so the cycle cannot form.
			// (robustness_test.go pins the contrast with ITRON semaphores,
			// where this same shape must be detected as a deadlock.)
			e.sys.tasks[a].body = func(p *sim.Proc) {
				wantSt(t, "a Get(r1)", e.sys.GetResource(p, r1), EOk)
				e.os.TimeWait(p, 10)
				wantSt(t, "a Get(r2)", e.sys.GetResource(p, r2), EOk)
				e.os.TimeWait(p, 10)
				wantSt(t, "a Rel(r2)", e.sys.ReleaseResource(p, r2), EOk)
				wantSt(t, "a Rel(r1)", e.sys.ReleaseResource(p, r1), EOk)
				done++
			}
			e.sys.tasks[b].body = func(p *sim.Proc) {
				wantSt(t, "b Get(r2)", e.sys.GetResource(p, r2), EOk)
				e.os.TimeWait(p, 10)
				wantSt(t, "b Get(r1)", e.sys.GetResource(p, r1), EOk)
				e.os.TimeWait(p, 10)
				wantSt(t, "b Rel(r1)", e.sys.ReleaseResource(p, r1), EOk)
				wantSt(t, "b Rel(r2)", e.sys.ReleaseResource(p, r2), EOk)
				done++
			}
			e.isr(5, "irq", func(p *sim.Proc) { e.sys.ActivateTask(p, b) })
			e.run()
			if done != 2 {
				t.Errorf("%d tasks completed their critical sections, want 2", done)
			}
		}},
		{"8.5-OSEK_PRIORITY_CEILING", "preempted-holder-requeues-at-ceiling-rank", func(t *testing.T) {
			e := newEnv(t, BCC1)
			var seq []string
			var hold, mid, hi TaskID
			hold = e.task(TaskDecl{Name: "hold", Prio: 10, Autostart: true}, func(p *sim.Proc) {})
			// peer only defines the ceiling (5); it is never activated.
			peer := e.task(TaskDecl{Name: "peer", Prio: 5}, func(p *sim.Proc) {})
			mid = e.task(TaskDecl{Name: "mid", Prio: 7}, func(p *sim.Proc) {
				seq = append(seq, "mid")
				e.os.TimeWait(p, 5)
			})
			hi = e.task(TaskDecl{Name: "hi", Prio: 1}, func(p *sim.Proc) {
				seq = append(seq, "hi")
				e.os.TimeWait(p, 5)
			})
			r := mustRes(t, e.sys, "r", hold, peer) // ceiling = peer's priority 5
			e.sys.tasks[hold].body = func(p *sim.Proc) {
				wantSt(t, "hold GetResource", e.sys.GetResource(p, r), EOk)
				seq = append(seq, "hold-cs")
				// Two delay segments: under the coarse time model hi's
				// activation at t=10 preempts only at the t=15 boundary, which
				// pushes the BOOSTED holder into the ready queue.
				e.os.TimeWait(p, 15)
				e.os.TimeWait(p, 15)
				seq = append(seq, "hold-release")
				wantSt(t, "hold ReleaseResource", e.sys.ReleaseResource(p, r), EOk)
				seq = append(seq, "hold-end")
			}
			e.isr(10, "irq-hi", func(p *sim.Proc) { e.sys.ActivateTask(p, hi) })
			e.isr(12, "irq-mid", func(p *sim.Proc) { e.sys.ActivateTask(p, mid) })
			e.run()
			// hold must be ranked at the ceiling (5) while queued: when hi
			// exits, hold (static 10, boosted 5) beats mid (7). At the
			// release the restore re-keys hold back to 10 and the reschedule
			// point lets mid preempt before hold's final statement.
			want := []string{"hold-cs", "hi", "hold-release", "mid", "hold-end"}
			if !reflect.DeepEqual(seq, want) {
				t.Errorf("execution order = %v, want %v", seq, want)
			}
		}},
		{"13.4.3.1-GetResource", "nested-get-checks-static-not-boosted-priority", func(t *testing.T) {
			e := newEnv(t, BCC1)
			var a TaskID
			a = e.task(TaskDecl{Name: "a", Prio: 5, Autostart: true}, func(p *sim.Proc) {})
			top := e.task(TaskDecl{Name: "top", Prio: 1}, func(p *sim.Proc) {})
			low := e.task(TaskDecl{Name: "low", Prio: 4}, func(p *sim.Proc) {})
			rHigh := mustRes(t, e.sys, "rHigh", a, top) // ceiling 1
			rLow := mustRes(t, e.sys, "rLow", a, low)   // ceiling 4
			e.sys.tasks[a].body = func(p *sim.Proc) {
				wantSt(t, "a Get(rHigh)", e.sys.GetResource(p, rHigh), EOk)
				// a now runs boosted to 1. The E_OS_ACCESS check of §13.4.3.1
				// compares the STATICALLY assigned priority (5) against the
				// ceiling (4), so nesting into the lower-ceiling resource is
				// legal despite the transient boost above it.
				wantSt(t, "a Get(rLow) while boosted", e.sys.GetResource(p, rLow), EOk)
				wantSt(t, "a Rel(rLow)", e.sys.ReleaseResource(p, rLow), EOk)
				wantSt(t, "a Rel(rHigh)", e.sys.ReleaseResource(p, rHigh), EOk)
			}
			e.run()
		}},
		{"13.4.2-DeclareResource", "declaration-errors", func(t *testing.T) {
			e := newEnv(t, BCC1)
			e.task(TaskDecl{Name: "a", Prio: 5, Autostart: true}, func(p *sim.Proc) {})
			if _, st := e.sys.DeclareResource("empty"); st != EOsValue {
				t.Errorf("DeclareResource(no accessors) = %v, want E_OS_VALUE", st)
			}
			if _, st := e.sys.DeclareResource("bad", 99); st != EOsID {
				t.Errorf("DeclareResource(invalid accessor) = %v, want E_OS_ID", st)
			}
		}},

		// ------------------------------------------------- events (ECC1 tasks)
		{"13.5.3.4-WaitEvent", "blocks-until-SetEvent", func(t *testing.T) {
			e := newEnv(t, ECC1)
			var wokeAt sim.Time = -1
			var ext TaskID
			ext = e.task(TaskDecl{Name: "ext", Prio: 1, Extended: true, Autostart: true}, func(p *sim.Proc) {
				wantSt(t, "WaitEvent", e.sys.WaitEvent(p, 0x1), EOk)
				wokeAt = p.Now()
				ev, rc := e.sys.GetEvent(ext)
				wantSt(t, "GetEvent", rc, EOk)
				if ev != 0x1 {
					t.Errorf("events after wake = %#x, want 0x1", ev)
				}
				wantSt(t, "ClearEvent", e.sys.ClearEvent(p, 0x1), EOk)
			})
			e.task(TaskDecl{Name: "lo", Prio: 5, Autostart: true}, func(p *sim.Proc) {
				e.os.TimeWait(p, 40)
				wantSt(t, "SetEvent", e.sys.SetEvent(p, ext, 0x1), EOk)
			})
			e.run()
			if wokeAt != 40 {
				t.Errorf("waiter woke at %v, want 40", wokeAt)
			}
		}},
		{"13.5.3.4-WaitEvent", "already-set-event-returns-immediately", func(t *testing.T) {
			e := newEnv(t, ECC1)
			var ext TaskID
			ext = e.task(TaskDecl{Name: "ext", Prio: 1, Extended: true, Autostart: true}, func(p *sim.Proc) {
				wantSt(t, "SetEvent(self)", e.sys.SetEvent(p, ext, 0x1), EOk)
				start := p.Now()
				wantSt(t, "WaitEvent", e.sys.WaitEvent(p, 0x1), EOk)
				if p.Now() != start {
					t.Errorf("WaitEvent blocked %v with the event already set", p.Now()-start)
				}
			})
			e.run()
		}},
		{"13.5.3.4-WaitEvent", "wakes-only-on-masked-event", func(t *testing.T) {
			e := newEnv(t, ECC1)
			var wokeAt sim.Time = -1
			var ext TaskID
			ext = e.task(TaskDecl{Name: "ext", Prio: 1, Extended: true, Autostart: true}, func(p *sim.Proc) {
				wantSt(t, "WaitEvent", e.sys.WaitEvent(p, 0x1), EOk)
				wokeAt = p.Now()
				if ev, _ := e.sys.GetEvent(ext); ev != 0x3 {
					t.Errorf("events after wake = %#x, want 0x3 (both deliveries kept)", ev)
				}
			})
			e.task(TaskDecl{Name: "lo", Prio: 5, Autostart: true}, func(p *sim.Proc) {
				e.os.TimeWait(p, 10)
				wantSt(t, "SetEvent(unmasked)", e.sys.SetEvent(p, ext, 0x2), EOk)
				e.os.TimeWait(p, 10)
				wantSt(t, "SetEvent(masked)", e.sys.SetEvent(p, ext, 0x1), EOk)
			})
			e.run()
			if wokeAt != 20 {
				t.Errorf("waiter woke at %v, want 20 (unmasked event must not wake)", wokeAt)
			}
		}},
		{"13.5.3.4-WaitEvent", "E_OS_RESOURCE-while-occupying", func(t *testing.T) {
			e := newEnv(t, ECC1)
			var a TaskID
			a = e.task(TaskDecl{Name: "a", Prio: 5, Extended: true, Autostart: true}, func(p *sim.Proc) {})
			r := mustRes(t, e.sys, "r", a)
			e.sys.tasks[a].body = func(p *sim.Proc) {
				wantSt(t, "GetResource", e.sys.GetResource(p, r), EOk)
				wantSt(t, "WaitEvent holding r", e.sys.WaitEvent(p, 0x1), EOsResource)
				wantSt(t, "ReleaseResource", e.sys.ReleaseResource(p, r), EOk)
			}
			e.run()
		}},
		{"13.5.3.1-SetEvent", "E_OS_ACCESS-basic-task", func(t *testing.T) {
			e := newEnv(t, ECC1)
			var basic TaskID
			e.task(TaskDecl{Name: "a", Prio: 1, Autostart: true}, func(p *sim.Proc) {
				wantSt(t, "ActivateTask(basic)", e.sys.ActivateTask(p, basic), EOk)
				wantSt(t, "SetEvent on basic task", e.sys.SetEvent(p, basic, 0x1), EOsAccess)
				wantSt(t, "SetEvent invalid id", e.sys.SetEvent(p, 99, 0x1), EOsID)
			})
			basic = e.task(TaskDecl{Name: "basic", Prio: 5}, func(p *sim.Proc) {})
			e.run()
		}},
		{"13.5.3.1-SetEvent", "E_OS_STATE-suspended-task", func(t *testing.T) {
			e := newEnv(t, ECC1)
			var ext TaskID
			e.task(TaskDecl{Name: "a", Prio: 1, Autostart: true}, func(p *sim.Proc) {
				e.os.TimeWait(p, 5) // well past start-up: ext is parked SUSPENDED
				wantSt(t, "SetEvent on suspended task", e.sys.SetEvent(p, ext, 0x1), EOsState)
			})
			ext = e.task(TaskDecl{Name: "ext", Prio: 5, Extended: true}, func(p *sim.Proc) {})
			e.run()
		}},
		{"13.5.3.2-ClearEvent", "clears-only-the-mask", func(t *testing.T) {
			e := newEnv(t, ECC1)
			var ext TaskID
			ext = e.task(TaskDecl{Name: "ext", Prio: 1, Extended: true, Autostart: true}, func(p *sim.Proc) {
				wantSt(t, "SetEvent", e.sys.SetEvent(p, ext, 0x3), EOk)
				wantSt(t, "ClearEvent", e.sys.ClearEvent(p, 0x1), EOk)
				if ev, _ := e.sys.GetEvent(ext); ev != 0x2 {
					t.Errorf("events after partial clear = %#x, want 0x2", ev)
				}
				e.os.TimeWait(p, 20)
			})
			e.isr(10, "irq", func(p *sim.Proc) {
				wantSt(t, "ClearEvent from ISR", e.sys.ClearEvent(p, 0x2), EOsCallevel)
			})
			e.run()
		}},

		// --------------------------------------------- counters, alarms, tables
		{"13.6.3.3-SetRelAlarm", "one-shot-activates-task", func(t *testing.T) {
			e := newEnv(t, BCC1)
			var start sim.Time = -1
			job := e.task(TaskDecl{Name: "job", Prio: 1}, func(p *sim.Proc) {
				start = p.Now()
			})
			c := e.sys.NewCounter("sys", 10, 1000)
			al := e.sys.NewAlarm("wake", c, ActionActivateTask(job))
			wantSt(t, "SetRelAlarm", al.SetRelAlarm(5, 0), EOk)
			e.runUntil(200)
			if start != 50 {
				t.Errorf("alarm activation at %v, want 50 (5 ticks of 10)", start)
			}
			if _, st := al.GetAlarm(); st != EOsNofunc {
				t.Errorf("GetAlarm after one-shot expiry = %v, want E_OS_NOFUNC", st)
			}
		}},
		{"13.6.3.3-SetRelAlarm", "cyclic-reactivates-task", func(t *testing.T) {
			e := newEnv(t, BCC1)
			var starts []sim.Time
			job := e.task(TaskDecl{Name: "job", Prio: 1}, func(p *sim.Proc) {
				starts = append(starts, p.Now())
			})
			c := e.sys.NewCounter("sys", 10, 1000)
			al := e.sys.NewAlarm("cycle", c, ActionActivateTask(job))
			wantSt(t, "SetRelAlarm", al.SetRelAlarm(2, 3), EOk)
			e.runUntil(100)
			want := []sim.Time{20, 50, 80}
			if !reflect.DeepEqual(starts, want) {
				t.Errorf("cyclic activations at %v, want %v", starts, want)
			}
		}},
		{"13.6.3.3-SetRelAlarm", "E_OS_STATE-armed-and-E_OS_VALUE-bounds", func(t *testing.T) {
			e := newEnv(t, BCC1)
			job := e.task(TaskDecl{Name: "job", Prio: 1}, func(p *sim.Proc) {})
			c := e.sys.NewCounter("sys", 10, 100)
			al := e.sys.NewAlarm("a", c, ActionActivateTask(job))
			wantSt(t, "SetRelAlarm(0)", al.SetRelAlarm(0, 0), EOsValue)
			wantSt(t, "SetRelAlarm(beyond max)", al.SetRelAlarm(101, 0), EOsValue)
			wantSt(t, "SetRelAlarm(bad cycle)", al.SetRelAlarm(5, 101), EOsValue)
			wantSt(t, "SetRelAlarm", al.SetRelAlarm(5, 0), EOk)
			wantSt(t, "SetRelAlarm while armed", al.SetRelAlarm(5, 0), EOsState)
			wantSt(t, "SetAbsAlarm while armed", al.SetAbsAlarm(7, 0), EOsState)
		}},
		{"13.6.3.2-GetAlarm", "remaining-ticks", func(t *testing.T) {
			e := newEnv(t, BCC1)
			var job TaskID
			c := e.sys.NewCounter("sys", 10, 1000)
			var al *Alarm
			job = e.task(TaskDecl{Name: "job", Prio: 1, Autostart: true}, func(p *sim.Proc) {
				e.os.TimeWait(p, 25) // counter value is 2 here
				rem, rc := al.GetAlarm()
				wantSt(t, "GetAlarm", rc, EOk)
				if rem != 3 {
					t.Errorf("GetAlarm remaining = %d ticks, want 3", rem)
				}
			})
			al = e.sys.NewAlarm("a", c, ActionSetEvent(job, 0x1))
			if _, st := al.GetAlarm(); st != EOsNofunc {
				t.Errorf("GetAlarm unarmed = %v, want E_OS_NOFUNC", st)
			}
			wantSt(t, "SetRelAlarm", al.SetRelAlarm(5, 0), EOk)
			e.runUntil(100)
		}},
		{"13.6.3.5-CancelAlarm", "cancel-prevents-expiry", func(t *testing.T) {
			e := newEnv(t, BCC1)
			fired := false
			job := e.task(TaskDecl{Name: "job", Prio: 1}, func(p *sim.Proc) {
				fired = true
			})
			c := e.sys.NewCounter("sys", 10, 1000)
			al := e.sys.NewAlarm("a", c, ActionActivateTask(job))
			if st := al.CancelAlarm(); st != EOsNofunc {
				t.Errorf("CancelAlarm unarmed = %v, want E_OS_NOFUNC", st)
			}
			wantSt(t, "SetRelAlarm", al.SetRelAlarm(5, 0), EOk)
			e.task(TaskDecl{Name: "canceller", Prio: 2, Autostart: true}, func(p *sim.Proc) {
				e.os.TimeWait(p, 15)
				wantSt(t, "CancelAlarm", al.CancelAlarm(), EOk)
			})
			e.runUntil(200)
			if fired {
				t.Error("canceled alarm still fired")
			}
		}},
		{"9.2-alarm-action", "set-event-wakes-waiting-task", func(t *testing.T) {
			e := newEnv(t, ECC1)
			var wokeAt sim.Time = -1
			ext := e.task(TaskDecl{Name: "ext", Prio: 1, Extended: true, Autostart: true}, func(p *sim.Proc) {
				wantSt(t, "WaitEvent", e.sys.WaitEvent(p, 0x1), EOk)
				wokeAt = p.Now()
			})
			c := e.sys.NewCounter("sys", 10, 1000)
			al := e.sys.NewAlarm("tick", c, ActionSetEvent(ext, 0x1))
			wantSt(t, "SetRelAlarm", al.SetRelAlarm(3, 0), EOk)
			e.runUntil(100)
			if wokeAt != 30 {
				t.Errorf("alarm event woke the task at %v, want 30", wokeAt)
			}
		}},
		{"AUTOSAR-8.4.8-schedule-table", "expiry-points-fire-in-order", func(t *testing.T) {
			e := newEnv(t, BCC1)
			var starts []sim.Time
			var names []string
			mk := func(name string) TaskID {
				return e.task(TaskDecl{Name: name, Prio: 1}, func(p *sim.Proc) {
					starts = append(starts, p.Now())
					names = append(names, name)
				})
			}
			ta, tb, tc := mk("a"), mk("b"), mk("c")
			c := e.sys.NewCounter("sys", 10, 1000)
			st := e.sys.NewScheduleTable("tbl", c, 10, false,
				ExpiryPoint{Offset: 2, Action: ActionActivateTask(ta)},
				ExpiryPoint{Offset: 5, Action: ActionActivateTask(tb)},
				ExpiryPoint{Offset: 8, Action: ActionActivateTask(tc)})
			wantSt(t, "StartRel", st.StartRel(1), EOk)
			e.runUntil(200)
			if want := []string{"a", "b", "c"}; !reflect.DeepEqual(names, want) {
				t.Errorf("expiry order = %v, want %v", names, want)
			}
			if want := []sim.Time{30, 60, 90}; !reflect.DeepEqual(starts, want) {
				t.Errorf("expiry times = %v, want %v", starts, want)
			}
			if st.Running() {
				t.Error("one-shot table still running after its duration")
			}
		}},
		{"AUTOSAR-8.4.8-schedule-table", "repeating-table-wraps", func(t *testing.T) {
			e := newEnv(t, BCC1)
			var starts []sim.Time
			job := e.task(TaskDecl{Name: "job", Prio: 1}, func(p *sim.Proc) {
				starts = append(starts, p.Now())
			})
			c := e.sys.NewCounter("sys", 10, 1000)
			st := e.sys.NewScheduleTable("tbl", c, 5, true,
				ExpiryPoint{Offset: 2, Action: ActionActivateTask(job)})
			wantSt(t, "StartRel", st.StartRel(1), EOk)
			e.runUntil(140)
			want := []sim.Time{30, 80, 130}
			if !reflect.DeepEqual(starts, want) {
				t.Errorf("repeating expiries at %v, want %v", starts, want)
			}
			if !st.Running() {
				t.Error("repeating table stopped")
			}
		}},
		{"AUTOSAR-schedule-table", "start-stop-status-codes", func(t *testing.T) {
			e := newEnv(t, BCC1)
			job := e.task(TaskDecl{Name: "job", Prio: 1}, func(p *sim.Proc) {})
			c := e.sys.NewCounter("sys", 10, 100)
			st := e.sys.NewScheduleTable("tbl", c, 5, false,
				ExpiryPoint{Offset: 1, Action: ActionActivateTask(job)})
			if rc := st.Stop(); rc != EOsNofunc {
				t.Errorf("Stop while stopped = %v, want E_OS_NOFUNC", rc)
			}
			wantSt(t, "StartRel(0)", st.StartRel(0), EOsValue)
			wantSt(t, "StartRel", st.StartRel(2), EOk)
			wantSt(t, "StartRel while running", st.StartRel(2), EOsState)
			wantSt(t, "Stop", st.Stop(), EOk)
		}},
	}

	if len(cases) < 30 {
		t.Fatalf("conformance table has %d cases, want >= 30", len(cases))
	}
	seen := make(map[string]bool)
	for _, c := range cases {
		key := c.clause + "/" + c.name
		if seen[key] {
			t.Fatalf("duplicate conformance case %q", key)
		}
		seen[key] = true
		t.Run(key, c.run)
	}
}
