package osek

import (
	"repro/internal/sim"
)

// Counter is an OSEK counter (OSEK OS 2.2.3 §9): a tick source alarms
// and schedule tables are attached to. The model drives each counter
// from a daemon simulation process with a fixed tick duration, wrapping
// at MaxAllowedValue like the hardware counters OSEK abstracts.
type Counter struct {
	sys        *System
	name       string
	tick       sim.Time
	maxAllowed int64
	value      int64
	alarms     []*Alarm
	tables     []*ScheduleTable
}

// NewCounter declares a counter before Start. tick is the simulated
// duration of one counter tick; maxAllowed is MAXALLOWEDVALUE.
func (s *System) NewCounter(name string, tick sim.Time, maxAllowed int64) *Counter {
	if s.started {
		panic("osek: NewCounter after Start")
	}
	if tick <= 0 || maxAllowed < 1 {
		panic("osek: NewCounter needs positive tick and MAXALLOWEDVALUE")
	}
	c := &Counter{sys: s, name: name, tick: tick, maxAllowed: maxAllowed}
	k := s.os.Kernel()
	pr := k.Spawn("counter:"+name, func(p *sim.Proc) { c.drive(p) })
	pr.SetDaemon(true)
	return c
}

// Value returns the counter's current tick count.
func (c *Counter) Value() int64 { return c.value }

// drive advances the counter one tick at a time. Expiry actions run in
// interrupt context (the alarm interrupt of a hardware counter), so
// activations and events they deliver trigger scheduling decisions
// through the normal ISR path.
func (c *Counter) drive(p *sim.Proc) {
	for {
		p.WaitFor(c.tick)
		c.value++
		if c.value > c.maxAllowed {
			c.value = 0
		}
		fired := false
		for _, a := range c.alarms {
			fired = a.check() || fired
		}
		for _, st := range c.tables {
			fired = st.check() || fired
		}
		if !fired {
			continue
		}
		c.sys.os.InterruptEnter(p, "counter:"+c.name)
		for _, a := range c.alarms {
			a.fire(p)
		}
		for _, st := range c.tables {
			st.fire(p)
		}
		c.sys.os.InterruptReturn(p, "counter:"+c.name)
	}
}

// AlarmAction is what an alarm does on expiry: activate a task, set an
// event, or run a callback (§9.2).
type AlarmAction func(p *sim.Proc, s *System)

// ActionActivateTask activates a task on expiry.
func ActionActivateTask(id TaskID) AlarmAction {
	return func(p *sim.Proc, s *System) { s.ActivateTask(p, id) }
}

// ActionSetEvent sets an event of an extended task on expiry.
func ActionSetEvent(id TaskID, mask EventMask) AlarmAction {
	return func(p *sim.Proc, s *System) { s.SetEvent(p, id, mask) }
}

// ActionCallback runs an alarm-callback routine on expiry.
func ActionCallback(fn func()) AlarmAction {
	return func(p *sim.Proc, s *System) { fn() }
}

// Alarm is an OSEK alarm attached to a counter (§9.2): one-shot or
// cyclic, armed relative or absolute, with an activation/event/callback
// action.
type Alarm struct {
	counter *Counter
	name    string
	action  AlarmAction

	active  bool
	expiry  int64 // absolute counter value of next expiry
	cycle   int64 // 0 = one-shot
	pending bool  // matched this tick; fires in the interrupt phase
}

// NewAlarm declares an alarm on a counter before Start.
func (s *System) NewAlarm(name string, c *Counter, action AlarmAction) *Alarm {
	if s.started {
		panic("osek: NewAlarm after Start")
	}
	a := &Alarm{counter: c, name: name, action: action}
	c.alarms = append(c.alarms, a)
	return a
}

func (a *Alarm) check() bool {
	if a.active && a.counter.value == a.expiry {
		a.pending = true
	}
	return a.pending
}

func (a *Alarm) fire(p *sim.Proc) {
	if !a.pending {
		return
	}
	a.pending = false
	if a.cycle > 0 {
		a.expiry = (a.expiry + a.cycle) % (a.counter.maxAllowed + 1)
	} else {
		a.active = false
	}
	a.action(p, a.counter.sys)
}

// SetRelAlarm arms the alarm to expire increment ticks from now, then
// every cycle ticks (cycle 0 = one-shot) — §13.6.3.3. E_OS_STATE when
// already armed; E_OS_VALUE for increment/cycle outside the counter's
// limits.
func (a *Alarm) SetRelAlarm(increment, cycle int64) StatusType {
	if a.active {
		return EOsState
	}
	c := a.counter
	if increment <= 0 || increment > c.maxAllowed ||
		cycle != 0 && (cycle < 1 || cycle > c.maxAllowed) {
		return EOsValue
	}
	a.expiry = (c.value + increment) % (c.maxAllowed + 1)
	a.cycle = cycle
	a.active = true
	return EOk
}

// SetAbsAlarm arms the alarm to expire when the counter reaches start —
// §13.6.3.4.
func (a *Alarm) SetAbsAlarm(start, cycle int64) StatusType {
	if a.active {
		return EOsState
	}
	c := a.counter
	if start < 0 || start > c.maxAllowed ||
		cycle != 0 && (cycle < 1 || cycle > c.maxAllowed) {
		return EOsValue
	}
	a.expiry = start
	a.cycle = cycle
	a.active = true
	return EOk
}

// CancelAlarm disarms the alarm — §13.6.3.5. E_OS_NOFUNC when not armed.
func (a *Alarm) CancelAlarm() StatusType {
	if !a.active {
		return EOsNofunc
	}
	a.active = false
	return EOk
}

// GetAlarm returns the ticks remaining until expiry — §13.6.3.2.
// E_OS_NOFUNC when the alarm is not armed.
func (a *Alarm) GetAlarm() (int64, StatusType) {
	if !a.active {
		return 0, EOsNofunc
	}
	c := a.counter
	rem := a.expiry - c.value
	if rem < 0 {
		rem += c.maxAllowed + 1
	}
	return rem, EOk
}

// ExpiryPoint is one entry of a schedule table: at Offset ticks from the
// table's start, run Action.
type ExpiryPoint struct {
	Offset int64
	Action AlarmAction
}

// ScheduleTable is an AUTOSAR-style schedule table on a counter: a
// statically ordered list of expiry points over a duration, optionally
// repeating. (AUTOSAR OS SWS §8.4.8 ff.; OSEK models the same pattern
// with coordinated alarms.)
type ScheduleTable struct {
	sys      *System
	name     string
	counter  *Counter
	duration int64
	points   []ExpiryPoint
	repeat   bool

	running bool
	startAt int64 // counter value of the current cycle's logical start
	next    int   // index of the next expiry point
	fireIdx []int // points matched this tick
}

// NewScheduleTable declares a schedule table before Start. Points must
// be strictly offset-ordered within (0, duration].
func (s *System) NewScheduleTable(name string, c *Counter, duration int64, repeat bool, points ...ExpiryPoint) *ScheduleTable {
	if s.started {
		panic("osek: NewScheduleTable after Start")
	}
	last := int64(-1)
	for _, pt := range points {
		if pt.Offset < 0 || pt.Offset > duration || pt.Offset <= last {
			panic("osek: schedule table offsets must be ordered within the duration")
		}
		last = pt.Offset
	}
	st := &ScheduleTable{sys: s, name: name, counter: c, duration: duration,
		repeat: repeat, points: points}
	c.tables = append(c.tables, st)
	return st
}

// StartRel starts the table offset ticks from now — AUTOSAR
// StartScheduleTableRel. E_OS_STATE when already started, E_OS_VALUE for
// a bad offset.
func (st *ScheduleTable) StartRel(offset int64) StatusType {
	if st.running {
		return EOsState
	}
	if offset <= 0 || offset > st.counter.maxAllowed {
		return EOsValue
	}
	st.startAt = st.counter.value + offset
	st.next = 0
	st.running = true
	return EOk
}

// Stop halts the table — AUTOSAR StopScheduleTable. E_OS_NOFUNC when not
// running.
func (st *ScheduleTable) Stop() StatusType {
	if !st.running {
		return EOsNofunc
	}
	st.running = false
	return EOk
}

// Running reports whether the table is started.
func (st *ScheduleTable) Running() bool { return st.running }

func (st *ScheduleTable) check() bool {
	if !st.running {
		return false
	}
	elapsed := st.counter.value - st.startAt
	if elapsed < 0 {
		return false
	}
	for st.next < len(st.points) && st.points[st.next].Offset == elapsed {
		st.fireIdx = append(st.fireIdx, st.next)
		st.next++
	}
	if st.next >= len(st.points) && elapsed >= st.duration {
		if st.repeat {
			st.startAt += st.duration
			st.next = 0
		} else {
			st.running = false
		}
	}
	return len(st.fireIdx) > 0
}

func (st *ScheduleTable) fire(p *sim.Proc) {
	for _, i := range st.fireIdx {
		st.points[i].Action(p, st.sys)
	}
	st.fireIdx = st.fireIdx[:0]
}
