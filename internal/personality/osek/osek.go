// Package osek models an OSEK/VDX OS 2.2.3 (and AUTOSAR OS classic)
// kernel personality on top of the shared abstract-RTOS dispatcher
// (internal/core): static task declaration with BCC1/BCC2/ECC1
// conformance classes, multiple-activation queueing, the immediate
// priority-ceiling resource protocol (OSEK_PRIORITY_CEILING), per-task
// events for extended tasks, counters/alarms/schedule tables, and
// explicit Schedule() points for non-preemptable tasks.
//
// Services return OSEK StatusType codes (extended-status error checking)
// so conformance tests can pin the specified error semantics clause by
// clause. Priorities keep the repository convention smaller = higher
// (OSEK numbers priorities the other way around; only the ordering
// matters to the model).
//
// OSEK task bodies follow the specification's control flow: a body runs
// once per activation and must end each activation with TerminateTask or
// ChainTask (returning from the body is treated as TerminateTask, as
// implementations do in their error hook). Code after a successful
// TerminateTask/ChainTask call must not execute; bodies must return
// immediately after these calls.
package osek

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// StatusType is the OSEK service return status (OSEK OS 2.2.3 §13.1).
type StatusType uint8

// OSEK standard status codes.
const (
	EOk         StatusType = 0
	EOsAccess   StatusType = 1 // service on an object without access right
	EOsCallevel StatusType = 2 // call at interrupt level where forbidden
	EOsID       StatusType = 3 // object identifier invalid
	EOsLimit    StatusType = 4 // too many task activations
	EOsNofunc   StatusType = 5 // service rejected in the object's state
	EOsResource StatusType = 6 // resource occupancy rule violated
	EOsState    StatusType = 7 // object state forbids the service
	EOsValue    StatusType = 8 // value outside admissible limits
)

func (s StatusType) String() string {
	switch s {
	case EOk:
		return "E_OK"
	case EOsAccess:
		return "E_OS_ACCESS"
	case EOsCallevel:
		return "E_OS_CALLEVEL"
	case EOsID:
		return "E_OS_ID"
	case EOsLimit:
		return "E_OS_LIMIT"
	case EOsNofunc:
		return "E_OS_NOFUNC"
	case EOsResource:
		return "E_OS_RESOURCE"
	case EOsState:
		return "E_OS_STATE"
	case EOsValue:
		return "E_OS_VALUE"
	}
	return fmt.Sprintf("StatusType(%d)", uint8(s))
}

// Class is the OSEK conformance class (OSEK OS 2.2.3 §3): BCC1 — basic
// tasks, one activation; BCC2 — basic tasks, multiple activations and
// shared priorities; ECC1 — extended tasks (events), one activation.
type Class int

const (
	BCC1 Class = iota
	BCC2
	ECC1
)

func (c Class) String() string {
	switch c {
	case BCC1:
		return "BCC1"
	case BCC2:
		return "BCC2"
	case ECC1:
		return "ECC1"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// TaskID identifies a declared task.
type TaskID int

// TaskStateType is the OSEK task-state model (§4.2): RUNNING, READY,
// WAITING (extended tasks only) and SUSPENDED.
type TaskStateType int

const (
	Suspended TaskStateType = iota
	Ready
	Running
	Waiting
)

func (s TaskStateType) String() string {
	switch s {
	case Suspended:
		return "SUSPENDED"
	case Ready:
		return "READY"
	case Running:
		return "RUNNING"
	case Waiting:
		return "WAITING"
	}
	return fmt.Sprintf("TaskStateType(%d)", int(s))
}

// TaskDecl declares one task of the static OSEK application (OIL TASK
// object): base priority (smaller = higher), activation bound,
// extended/basic, preemptability, and autostart.
type TaskDecl struct {
	Name           string
	Prio           int
	MaxActivations int  // concurrent activation bound (1 unless BCC2)
	Extended       bool // may wait on events (ECC1)
	NonPreemptable bool // runs to its next scheduling point
	Autostart      bool // activated at system start
}

// System is one OSEK personality instance over a core.OS. Tasks,
// resources, counters and alarms are declared before Start, matching
// OSEK's static configuration.
type System struct {
	os      *core.OS
	class   Class
	tasks   []*TCB
	byTask  map[*core.Task]*TCB
	res     []*Res
	started bool
}

// NewSystem attaches an OSEK personality of the given conformance class
// to an OS instance.
func NewSystem(os *core.OS, class Class) *System {
	// §4.6.5: preempted tasks re-enter their priority level as oldest.
	os.SetPreemptFrontReinsert(true)
	return &System{os: os, class: class, byTask: make(map[*core.Task]*TCB)}
}

// OS returns the underlying dispatcher instance.
func (s *System) OS() *core.OS { return s.os }

// Classof returns the system's conformance class.
func (s *System) Classof() Class { return s.class }

// TCB is the OSEK extension of a task control block.
type TCB struct {
	sys  *System
	id   TaskID
	decl TaskDecl
	task *core.Task
	body func(p *sim.Proc)

	pending  int // queued activations beyond the current one
	preStart int // activations that arrived before the task's process bound
	finished bool

	events   EventMask // pending event set (extended tasks)
	waiting  EventMask // wait mask while in WaitEvent
	inWait   bool
	resStack []*Res // LIFO of occupied resources
	oldPrio  []int  // priorities saved by GetResource boosts
}

// Task returns the TCB's dispatcher-level task.
func (tc *TCB) Task() *core.Task { return tc.task }

// ID returns the task's identifier.
func (tc *TCB) ID() TaskID { return tc.id }

// DeclareTask declares a task before Start. Conformance-class rules are
// enforced here: extended tasks need ECC1, multiple activations need
// BCC2 (E_OS_ACCESS / E_OS_VALUE otherwise).
func (s *System) DeclareTask(d TaskDecl, body func(p *sim.Proc)) (TaskID, StatusType) {
	if s.started {
		return -1, EOsState
	}
	if d.MaxActivations <= 0 {
		d.MaxActivations = 1
	}
	if d.Extended && s.class != ECC1 {
		return -1, EOsAccess
	}
	if d.MaxActivations > 1 && s.class != BCC2 {
		return -1, EOsValue
	}
	if d.Extended && d.MaxActivations > 1 {
		return -1, EOsValue
	}
	tc := &TCB{sys: s, id: TaskID(len(s.tasks)), decl: d, body: body}
	s.tasks = append(s.tasks, tc)
	return tc.id, EOk
}

// SetBody replaces a declared task's body before Start. Resource, event
// and alarm identifiers only exist after the tasks they reference are
// declared, so bodies that use them are typically bound late through
// this hook.
func (s *System) SetBody(id TaskID, body func(p *sim.Proc)) StatusType {
	if s.started {
		return EOsState
	}
	if int(id) < 0 || int(id) >= len(s.tasks) {
		return EOsID
	}
	s.tasks[id].body = body
	return EOk
}

// Start instantiates all declared tasks on the dispatcher and begins
// the simulation's OS operation; autostart tasks are activated.
func (s *System) Start() {
	if s.started {
		panic("osek: Start called twice")
	}
	s.started = true
	k := s.os.Kernel()
	for _, tc := range s.tasks {
		tc.task = s.os.TaskCreate(tc.decl.Name, core.Aperiodic, 0, 0, tc.decl.Prio)
		if tc.decl.NonPreemptable {
			tc.task.SetPreemptable(false)
		}
		s.byTask[tc.task] = tc
		tcc := tc
		pr := k.Spawn(tc.decl.Name, func(p *sim.Proc) { s.taskLoop(p, tcc) })
		// OSEK tasks live for the whole system run and park in SUSPENDED
		// between activations; as daemons they don't hold the simulation
		// open once all productive work has drained.
		pr.SetDaemon(true)
	}
	s.os.Start(nil)
}

// taskLoop is the per-task driver: it binds the process, parks
// non-autostart tasks, and runs the body once per activation.
func (s *System) taskLoop(p *sim.Proc, tc *TCB) {
	switch {
	case tc.decl.Autostart:
		tc.pending += tc.preStart
		tc.preStart = 0
		s.os.TaskActivate(p, tc.task)
	case tc.preStart > 0:
		// Activated during the start-up delta cycles, before this process
		// bound to the task: consume one activation now, queue the rest.
		tc.pending += tc.preStart - 1
		tc.preStart = 0
		s.os.TaskActivate(p, tc.task)
	default:
		s.os.Adopt(p, tc.task)
	}
	for {
		tc.finished = false
		tc.body(p)
		if !tc.finished {
			// Returning from the body without TerminateTask: treated as an
			// implicit TerminateTask (§4.7, behavior of conforming
			// implementations' error hooks).
			s.TerminateTask(p)
		}
	}
}

// tcb validates a TaskID.
func (s *System) tcb(id TaskID) (*TCB, bool) {
	if id < 0 || int(id) >= len(s.tasks) {
		return nil, false
	}
	return s.tasks[id], true
}

// currentTCB resolves the calling process to the running task's TCB
// (nil at interrupt level or for foreign processes).
func (s *System) currentTCB(p *sim.Proc) *TCB {
	t := s.os.Current()
	if t == nil || t.Proc() != p {
		return nil
	}
	return s.byTask[t]
}

// suspended reports whether the task is in the OSEK SUSPENDED state.
func (tc *TCB) suspended() bool {
	st := tc.task.State()
	return st == core.TaskSuspended || st == core.TaskCreated
}

// ---------------------------------------------------------------------------
// Task management services (OSEK OS 2.2.3 §13.2).

// ActivateTask transfers a suspended task into the ready state, or — for
// BCC2 tasks already active — queues the activation (§13.2.3.1):
// E_OS_LIMIT when the activation bound is exceeded, E_OS_ID for an
// invalid task. Callable from task and interrupt level.
func (s *System) ActivateTask(p *sim.Proc, id TaskID) StatusType {
	tc, ok := s.tcb(id)
	if !ok {
		return EOsID
	}
	if tc.task.Proc() == nil {
		// The task's process has not bound yet (start-up delta cycles):
		// record the activation for delivery when it does.
		act := 1 + tc.preStart
		if tc.decl.Autostart {
			act++
		}
		if act > tc.decl.MaxActivations {
			return EOsLimit
		}
		tc.preStart++
		return EOk
	}
	if tc.suspended() {
		tc.events = 0 // activation clears the event set (§4.6.1)
		s.os.TaskActivate(p, tc.task)
		return EOk
	}
	if 1+tc.pending >= tc.decl.MaxActivations {
		return EOsLimit
	}
	tc.pending++
	return EOk
}

// TerminateTask ends the calling task's current activation (§13.2.3.2).
// With a queued activation pending, the task re-enters the ready queue
// from the rear; otherwise it moves to SUSPENDED. E_OS_RESOURCE while
// still occupying a resource, E_OS_CALLEVEL at interrupt level. The
// body must return immediately after a successful call.
func (s *System) TerminateTask(p *sim.Proc) StatusType {
	tc := s.currentTCB(p)
	if tc == nil {
		return EOsCallevel
	}
	if len(tc.resStack) > 0 {
		return EOsResource
	}
	tc.finished = true
	tc.task.NoteActivation()
	if tc.pending > 0 {
		tc.pending--
		s.os.Requeue(p)
	} else {
		s.os.TaskSleep(p)
	}
	return EOk
}

// ChainTask terminates the calling task and activates the successor in
// one atomic operation (§13.2.3.3): the successor is readied before the
// caller's termination performs the dispatch decision. Chaining self
// queues a new activation of the caller. E_OS_LIMIT is returned — with
// the caller NOT terminated — when the successor's activation bound is
// exceeded.
func (s *System) ChainTask(p *sim.Proc, id TaskID) StatusType {
	tc := s.currentTCB(p)
	if tc == nil {
		return EOsCallevel
	}
	succ, ok := s.tcb(id)
	if !ok {
		return EOsID
	}
	if len(tc.resStack) > 0 {
		return EOsResource
	}
	if succ == tc {
		tc.pending++
	} else if succ.suspended() {
		succ.events = 0
		s.os.MakeReady(succ.task)
	} else {
		if 1+succ.pending >= succ.decl.MaxActivations {
			return EOsLimit
		}
		succ.pending++
	}
	tc.finished = true
	tc.task.NoteActivation()
	if tc.pending > 0 {
		tc.pending--
		s.os.Requeue(p)
	} else {
		s.os.TaskSleep(p)
	}
	return EOk
}

// Schedule is the explicit scheduling point of non-preemptable tasks
// (§13.2.3.4): a ready task with higher priority is dispatched.
// E_OS_RESOURCE while occupying a resource, E_OS_CALLEVEL at interrupt
// level.
func (s *System) Schedule(p *sim.Proc) StatusType {
	tc := s.currentTCB(p)
	if tc == nil {
		return EOsCallevel
	}
	if len(tc.resStack) > 0 {
		return EOsResource
	}
	s.os.Yield(p)
	return EOk
}

// GetTaskID returns the calling task's identifier, or -1 at interrupt
// level (§13.2.3.5).
func (s *System) GetTaskID(p *sim.Proc) (TaskID, StatusType) {
	tc := s.currentTCB(p)
	if tc == nil {
		return -1, EOk // INVALID_TASK
	}
	return tc.id, EOk
}

// GetTaskState returns the OSEK state of a task (§13.2.3.6).
func (s *System) GetTaskState(id TaskID) (TaskStateType, StatusType) {
	tc, ok := s.tcb(id)
	if !ok {
		return Suspended, EOsID
	}
	switch st := tc.task.State(); {
	case tc.task == s.os.Current():
		return Running, EOk
	case st == core.TaskReady:
		return Ready, EOk
	case st == core.TaskSuspended, st == core.TaskCreated:
		return Suspended, EOk
	case !st.Alive():
		return Suspended, EOk
	default:
		return Waiting, EOk
	}
}
