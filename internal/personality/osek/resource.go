package osek

import (
	"repro/internal/core"
	"repro/internal/sim"
)

// ResID identifies a declared resource.
type ResID int

// Res is an OSEK resource governed by the immediate priority ceiling
// protocol (OSEK OS 2.2.3 §8, OSEK_PRIORITY_CEILING): GetResource raises
// the caller to the resource's ceiling priority — the highest base
// priority among its statically declared accessors — so no task that
// could contend for the resource is ever dispatched while it is held.
// The protocol makes resource deadlock structurally impossible, which
// the fault-campaign regression pins against the semaphore-ring cycle.
type Res struct {
	sys     *System
	id      ResID
	name    string
	ceiling int
	holder  *TCB
	access  map[TaskID]bool
	res     *core.Resource
}

// DeclareResource declares a resource with its accessor set before
// Start; the ceiling priority is computed from the accessors' base
// priorities (smaller value = higher priority). E_OS_ID when an accessor
// is invalid, E_OS_VALUE for an empty accessor set.
func (s *System) DeclareResource(name string, accessors ...TaskID) (ResID, StatusType) {
	if s.started {
		return -1, EOsState
	}
	if len(accessors) == 0 {
		return -1, EOsValue
	}
	r := &Res{sys: s, id: ResID(len(s.res)), name: name,
		access: make(map[TaskID]bool, len(accessors)),
		res:    s.os.Monitor().NewResource(name, "resource", true)}
	first := true
	for _, id := range accessors {
		tc, ok := s.tcb(id)
		if !ok {
			return -1, EOsID
		}
		r.access[id] = true
		if first || tc.decl.Prio < r.ceiling {
			r.ceiling = tc.decl.Prio
		}
		first = false
	}
	s.res = append(s.res, r)
	return r.id, EOk
}

func (s *System) resource(id ResID) (*Res, bool) {
	if id < 0 || int(id) >= len(s.res) {
		return nil, false
	}
	return s.res[id], true
}

// GetResource occupies a resource (§13.4.3.1) and immediately boosts the
// caller to the ceiling priority. E_OS_ID for an invalid resource;
// E_OS_ACCESS when the caller is not a declared accessor, already
// occupies the resource (nested re-entry), or its current priority is
// above the ceiling — all the specification's misuse cases.
func (s *System) GetResource(p *sim.Proc, id ResID) StatusType {
	tc := s.currentTCB(p)
	if tc == nil {
		return EOsCallevel
	}
	r, ok := s.resource(id)
	if !ok {
		return EOsID
	}
	if !r.access[tc.id] || r.holder == tc {
		return EOsAccess
	}
	if tc.decl.Prio < r.ceiling {
		// The specification checks the STATICALLY assigned priority, not
		// the current one: a task already boosted by an outer resource may
		// legally nest into a resource with a lower ceiling.
		return EOsAccess
	}
	r.holder = tc
	tc.resStack = append(tc.resStack, r)
	tc.oldPrio = append(tc.oldPrio, tc.task.Priority())
	if r.ceiling < tc.task.Priority() {
		// Immediate ceiling boost; SetPriority re-keys the indexed ready
		// queue when the task is queued (it is running here, so the new
		// rank simply applies at its next ready-queue entry).
		tc.task.SetPriority(r.ceiling)
	}
	r.res.Acquire(p)
	return EOk
}

// ReleaseResource releases the caller's most recently occupied resource
// (§13.4.3.2): releases must be LIFO-nested. E_OS_NOFUNC when the
// resource is not occupied by the caller or an inner resource is still
// held; the priority reverts to the value saved at GetResource and a
// scheduling decision follows.
func (s *System) ReleaseResource(p *sim.Proc, id ResID) StatusType {
	tc := s.currentTCB(p)
	if tc == nil {
		return EOsCallevel
	}
	r, ok := s.resource(id)
	if !ok {
		return EOsID
	}
	n := len(tc.resStack)
	if n == 0 || tc.resStack[n-1] != r {
		return EOsNofunc
	}
	tc.resStack = tc.resStack[:n-1]
	restore := tc.oldPrio[n-1]
	tc.oldPrio = tc.oldPrio[:n-1]
	r.holder = nil
	r.res.Release(p)
	if restore != tc.task.Priority() {
		tc.task.SetPriority(restore)
		s.os.Reschedule(p)
	}
	return EOk
}

// CeilingOf returns the ceiling priority of a declared resource.
func (s *System) CeilingOf(id ResID) (int, StatusType) {
	r, ok := s.resource(id)
	if !ok {
		return 0, EOsID
	}
	return r.ceiling, EOk
}
