package personality

import (
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/sim"
)

// genericRT is the paper-model personality: every operation maps 1:1 to
// the core/channel service it always mapped to, so models running under
// it are byte-identical to models written against those packages
// directly.
type genericRT struct {
	os *core.OS
	f  channel.RTOSFactory
}

func newGeneric(os *core.OS) Runtime {
	return &genericRT{os: os, f: channel.RTOSFactory{OS: os}}
}

func (r *genericRT) Kind() string { return Generic }
func (r *genericRT) OS() *core.OS { return r.os }

func (r *genericRT) TaskCreate(name string, typ core.TaskType, period, wcet sim.Time, prio int) *core.Task {
	return r.os.TaskCreate(name, typ, period, wcet, prio)
}

func (r *genericRT) Activate(p *sim.Proc, t *core.Task) { r.os.TaskActivate(p, t) }
func (r *genericRT) Compute(p *sim.Proc, d sim.Time)    { r.os.TimeWait(p, d) }
func (r *genericRT) EndCycle(p *sim.Proc)               { r.os.TaskEndCycle(p) }
func (r *genericRT) Terminate(p *sim.Proc)              { r.os.TaskTerminate(p) }
func (r *genericRT) Sleep(p *sim.Proc)                  { r.os.TaskSleep(p) }
func (r *genericRT) Wake(p *sim.Proc, t *core.Task)     { r.os.TaskActivate(p, t) }
func (r *genericRT) Schedule(p *sim.Proc)               { r.os.Yield(p) }

func (r *genericRT) ChangePriority(p *sim.Proc, t *core.Task, prio int) {
	t.SetPriority(prio)
	r.os.Reschedule(p)
}

func (r *genericRT) NewQueue(name string, capacity int) Queue {
	return genericQueue{q: channel.NewQueue[int64](r.f, name, capacity)}
}

func (r *genericRT) NewSemaphore(name string, count int) Semaphore {
	return channel.NewSemaphore(r.f, name, count)
}

type genericQueue struct{ q *channel.Queue[int64] }

func (g genericQueue) Send(p *sim.Proc, v int64) { g.q.Send(p, v) }
func (g genericQueue) Recv(p *sim.Proc) int64    { return g.q.Recv(p) }
