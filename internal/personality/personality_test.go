package personality

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func TestRegistry(t *testing.T) {
	k := sim.NewKernel()
	defer k.Shutdown()
	os := core.New(k, "PE", core.PriorityPolicy{})
	os.Init()
	for _, kind := range Kinds() {
		rt, err := New(kind, os)
		if err != nil {
			t.Fatalf("New(%q): %v", kind, err)
		}
		if rt.Kind() != kind {
			t.Errorf("New(%q).Kind() = %q", kind, rt.Kind())
		}
		if rt.OS() != os {
			t.Errorf("New(%q).OS() is not the given instance", kind)
		}
	}
	if rt, err := New("", os); err != nil || rt.Kind() != Generic {
		t.Errorf("New(\"\") = %v/%v, want the generic personality", rt, err)
	}
	if _, err := New("vxworks", os); err == nil {
		t.Error("New(unknown) succeeded, want error")
	}
}

// outcome is the personality-neutral observable result of one task.
type outcome struct {
	cpu         sim.Time
	activations int
	terminated  bool
}

// runMixedScenario runs a fixed producer/consumer + IRQ-semaphore task
// set under the given personality and returns per-task outcomes.
func runMixedScenario(t *testing.T, kind string) map[string]outcome {
	t.Helper()
	k := sim.NewKernel()
	defer k.Shutdown()
	os := core.New(k, "PE", core.PriorityPolicy{})
	os.Init()
	rt, err := New(kind, os)
	if err != nil {
		t.Fatal(err)
	}

	q := rt.NewQueue("q", 4)
	sem := rt.NewSemaphore("s", 0)

	prod := rt.TaskCreate("prod", core.Aperiodic, 0, 0, 3)
	cons := rt.TaskCreate("cons", core.Aperiodic, 0, 0, 2)
	work := rt.TaskCreate("work", core.Aperiodic, 0, 0, 4)
	tasks := []*core.Task{prod, cons, work}

	k.Spawn("prod", func(p *sim.Proc) {
		rt.Activate(p, prod)
		rt.Compute(p, 10)
		q.Send(p, 1)
		rt.Compute(p, 10)
		q.Send(p, 2)
		rt.Terminate(p)
	})
	k.Spawn("cons", func(p *sim.Proc) {
		rt.Activate(p, cons)
		for want := int64(1); want <= 2; want++ {
			if v := q.Recv(p); v != want {
				t.Errorf("%s: recv = %d, want %d", kind, v, want)
			}
			rt.Compute(p, 5)
		}
		rt.Terminate(p)
	})
	k.Spawn("work", func(p *sim.Proc) {
		rt.Activate(p, work)
		sem.Acquire(p)
		sem.Acquire(p)
		rt.Compute(p, 20)
		rt.Terminate(p)
	})
	irq := k.Spawn("irq", func(p *sim.Proc) {
		p.WaitFor(15)
		for i := 0; i < 2; i++ {
			if i > 0 {
				p.WaitFor(10)
			}
			os.InterruptEnter(p, "irq")
			sem.Release(p)
			os.InterruptReturn(p, "irq")
		}
	})
	irq.SetDaemon(true)

	os.Start(nil)
	if err := k.Run(); err != nil {
		t.Fatalf("%s: %v", kind, err)
	}
	if d := os.Diagnosis(); d != nil {
		t.Fatalf("%s: %v", kind, d)
	}
	out := map[string]outcome{}
	for _, task := range tasks {
		out[task.Name()] = outcome{
			cpu:         task.CPUTime(),
			activations: task.Activations(),
			terminated:  task.State() == core.TaskTerminated,
		}
	}
	return out
}

// TestCrossPersonalityOutcomes is the differential oracle at package
// level: the same task set must complete with identical per-task CPU
// time and activation counts under every personality — the personalities
// change kernel API semantics (grant order, wakeup bookkeeping), not the
// modeled work.
func TestCrossPersonalityOutcomes(t *testing.T) {
	ref := runMixedScenario(t, Generic)
	for name, o := range ref {
		if !o.terminated {
			t.Fatalf("generic: task %s did not terminate", name)
		}
	}
	for _, kind := range []string{ITRON, OSEK} {
		got := runMixedScenario(t, kind)
		for name, want := range ref {
			g := got[name]
			if g != want {
				t.Errorf("%s: task %s outcome %+v, want %+v (generic)", kind, name, g, want)
			}
		}
	}
}

// TestSleepWakeTiming pins the sleep/wake mapping of every personality:
// the sleeper must resume exactly when the waker addresses it.
func TestSleepWakeTiming(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind, func(t *testing.T) {
			k := sim.NewKernel()
			defer k.Shutdown()
			os := core.New(k, "PE", core.PriorityPolicy{})
			os.Init()
			rt, _ := New(kind, os)

			var wokeAt sim.Time = -1
			slp := rt.TaskCreate("slp", core.Aperiodic, 0, 0, 1)
			wak := rt.TaskCreate("wak", core.Aperiodic, 0, 0, 5)
			k.Spawn("slp", func(p *sim.Proc) {
				rt.Activate(p, slp)
				rt.Sleep(p)
				wokeAt = p.Now()
				rt.Compute(p, 5)
				rt.Terminate(p)
			})
			k.Spawn("wak", func(p *sim.Proc) {
				rt.Activate(p, wak)
				rt.Compute(p, 30)
				rt.Wake(p, slp)
				rt.Terminate(p)
			})
			os.Start(nil)
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			if wokeAt != 30 {
				t.Errorf("sleeper woke at %v, want 30", wokeAt)
			}
		})
	}
}

// TestChangePriorityRekeysReadyTask verifies the Ranker re-key hook
// fires through every personality's priority-change service: raising a
// READY task above the running one must preempt at that instant, which
// only happens if the indexed ready queue was re-ranked (a stale key
// would keep dispatching by the old priority).
func TestChangePriorityRekeysReadyTask(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind, func(t *testing.T) {
			k := sim.NewKernel()
			defer k.Shutdown()
			os := core.New(k, "PE", core.PriorityPolicy{})
			os.Init()
			rt, _ := New(kind, os)

			var midStart sim.Time = -1
			lo := rt.TaskCreate("lo", core.Aperiodic, 0, 0, 2)
			mid := rt.TaskCreate("mid", core.Aperiodic, 0, 0, 8)
			k.Spawn("lo", func(p *sim.Proc) {
				rt.Activate(p, lo)
				rt.Compute(p, 10)
				rt.ChangePriority(p, mid, 1) // mid is READY: re-key + preempt
				if midStart != 10 {
					t.Errorf("mid had not preempted after chg_pri (start=%v)", midStart)
				}
				rt.Terminate(p)
			})
			k.Spawn("mid", func(p *sim.Proc) {
				rt.Activate(p, mid)
				midStart = p.Now()
				rt.Compute(p, 5)
				rt.Terminate(p)
			})
			os.Start(nil)
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			if midStart != 10 {
				t.Errorf("mid started at %v, want 10 (the chg_pri instant)", midStart)
			}
		})
	}
}

// TestChangePriorityZeroAlloc pins the re-key hot path at zero
// allocations under both non-generic personalities: toggling a READY
// task's priority updates the indexed ready queue in place. Warm-up
// slices populate the lazy per-task kernel state (ITRON TCB extensions)
// before measurement.
func TestChangePriorityZeroAlloc(t *testing.T) {
	for _, kind := range []string{ITRON, OSEK} {
		t.Run(kind, func(t *testing.T) {
			k := sim.NewKernel()
			defer k.Shutdown()
			os := core.New(k, "PE", core.PriorityPolicy{})
			os.Init()
			rt, _ := New(kind, os)

			// hi toggles the ready lo task between two ranks below its own:
			// every iteration exercises SetPriority → rekeyReady → rq.Update
			// with no dispatch change.
			hi := rt.TaskCreate("hi", core.Aperiodic, 0, 0, 2)
			lo := rt.TaskCreate("lo", core.Aperiodic, 0, 0, 8)
			k.Spawn("hi", func(p *sim.Proc) {
				rt.Activate(p, hi)
				for pri := 8; ; pri ^= 1 { // 8 <-> 9
					rt.Compute(p, 10)
					rt.ChangePriority(p, lo, pri)
				}
			})
			k.Spawn("lo", func(p *sim.Proc) {
				rt.Activate(p, lo)
				rt.Compute(p, sim.Forever/2)
			})
			os.Start(nil)

			var horizon sim.Time
			step := func() {
				horizon += 10_000
				if err := k.RunUntil(horizon); err != nil {
					t.Fatal(err)
				}
			}
			step() // warm-up: lazy TCBs, slice growth
			if avg := testing.AllocsPerRun(20, step); avg != 0 {
				t.Errorf("%s: %.1f allocs per chg_pri slice, want 0", kind, avg)
			}
		})
	}
}
