package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newHTTPServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := openTestServer(t, t.TempDir(), 2)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func do(t *testing.T, method, url, body string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	respBody, readErr := io.ReadAll(resp.Body)
	if readErr != nil {
		t.Fatal(readErr)
	}
	return resp.StatusCode, string(respBody)
}

// TestHTTPAPITable: every endpoint's contract, including malformed
// payloads rejected with structured errors that carry the underlying
// validator's message.
func TestHTTPAPITable(t *testing.T) {
	_, ts := newHTTPServer(t)
	submit := func(kind, payload string) string {
		return fmt.Sprintf(`{"kind": %q, "payload": %s}`, kind, payload)
	}
	cases := []struct {
		name, method, path, body string
		wantCode                 int
		wantBody                 string
	}{
		{"healthz", "GET", "/healthz", "", 200, `"ok":true`},
		{"stats empty", "GET", "/stats", "", 200, `"executions":0`},
		{"list empty", "GET", "/jobs", "", 200, `"jobs":[]`},
		{"submit not json", "POST", "/jobs", `{`, 400, "error"},
		{"submit no kind", "POST", "/jobs", `{"payload": {}}`, 400, `needs \"kind\" and \"payload\"`},
		{"submit unknown kind", "POST", "/jobs", submit("warp", `{}`), 400, "unknown job kind"},
		// Malformed task sets carry taskset.Validate's message verbatim.
		{"taskset empty", "POST", "/jobs", submit("taskset", `{"tasks": []}`), 400, "no tasks"},
		{"taskset unnamed", "POST", "/jobs", submit("taskset",
			`{"horizonMs": 1, "tasks": [{"periodUs": 100, "wcetUs": 10}]}`), 400, "unnamed"},
		{"taskset bad policy", "POST", "/jobs", submit("taskset",
			`{"policy": "psychic", "horizonMs": 1, "tasks": [{"name": "a", "periodUs": 100, "wcetUs": 10}]}`),
			400, "psychic"},
		{"sdl no source", "POST", "/jobs", submit("sdl", `{}`), 400, "source"},
		{"fault no seeds", "POST", "/jobs", submit("fault", `{}`), 400, "seed"},
		{"dse unknown axis", "POST", "/jobs", submit("dse",
			fmt.Sprintf(`{"base": %s, "axes": [{"name": "magic", "values": ["on"]}]}`, tinySet)), 400, "magic"},
		{"status unknown job", "GET", "/jobs/job-999999", "", 404, "unknown job"},
		{"result unknown job", "GET", "/jobs/job-999999/result", "", 404, "unknown job"},
		{"receipt unknown job", "GET", "/jobs/job-999999/receipt", "", 404, "unknown job"},
		{"cancel unknown job", "POST", "/jobs/job-999999/cancel", "", 404, "unknown job"},
		{"submit valid", "POST", "/jobs", submit("taskset", tinySet), 202, `"id":"job-000001"`},
		{"resubmit duplicate", "POST", "/jobs", submit("taskset", tinySetReordered), 200, `"duplicate":true`},
	}
	for _, tc := range cases {
		code, body := do(t, tc.method, ts.URL+tc.path, tc.body)
		if code != tc.wantCode {
			t.Errorf("%s: code = %d, want %d (body %s)", tc.name, code, tc.wantCode, body)
		}
		if !strings.Contains(body, tc.wantBody) {
			t.Errorf("%s: body %q missing %q", tc.name, body, tc.wantBody)
		}
		if code >= 400 {
			var e apiError
			if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
				t.Errorf("%s: non-2xx body is not a structured error: %q", tc.name, body)
			}
		}
	}
}

// TestHTTPEndToEndSmoke: submit → poll → result → receipt → cancel
// against a live httptest server.
func TestHTTPEndToEndSmoke(t *testing.T) {
	s, ts := newHTTPServer(t)
	code, body := do(t, "POST", ts.URL+"/jobs",
		fmt.Sprintf(`{"kind": "taskset", "payload": %s}`, tinySet))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var sub submitResponse
	if err := json.Unmarshal([]byte(body), &sub); err != nil || sub.ID == "" {
		t.Fatalf("submit body %q: %v", body, err)
	}

	waitDone(t, s, sub.ID)
	deadline := time.Now().Add(10 * time.Second)
	var st JobStatus
	for {
		code, body = do(t, "GET", ts.URL+"/jobs/"+sub.ID, "")
		if code != 200 {
			t.Fatalf("status: %d %s", code, body)
		}
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatal(err)
		}
		if st.Status == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", st.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.CellsDone != 1 || st.Metrics == nil {
		t.Fatalf("done status = %+v", st)
	}

	code, res := do(t, "GET", ts.URL+"/jobs/"+sub.ID+"/result", "")
	if code != 200 || !strings.HasPrefix(res, "simd-result/1 ") {
		t.Fatalf("result: %d %q", code, res)
	}
	code, rbody := do(t, "GET", ts.URL+"/jobs/"+sub.ID+"/receipt", "")
	if code != 200 {
		t.Fatalf("receipt: %d %s", code, rbody)
	}
	var rcpt struct {
		Job string `json:"job"`
		Sig string `json:"sig"`
	}
	if err := json.Unmarshal([]byte(rbody), &rcpt); err != nil || rcpt.Job != sub.ID || rcpt.Sig == "" {
		t.Fatalf("receipt body %q: %v", rbody, err)
	}

	// A done job refuses cancellation with a conflict.
	code, body = do(t, "POST", ts.URL+"/jobs/"+sub.ID+"/cancel", "")
	if code != http.StatusConflict {
		t.Fatalf("cancel done job: %d %s", code, body)
	}

	// The list endpoint shows the job.
	code, body = do(t, "GET", ts.URL+"/jobs", "")
	if code != 200 || !strings.Contains(body, sub.ID) {
		t.Fatalf("list: %d %s", code, body)
	}
	code, body = do(t, "GET", ts.URL+"/stats", "")
	if code != 200 || !strings.Contains(body, `"executions":1`) {
		t.Fatalf("stats: %d %s", code, body)
	}
}
