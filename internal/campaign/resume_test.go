package campaign

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/campaign/receipt"
	"repro/internal/campaign/runstate"
)

// The differential crash-resume harness.
//
// A mixed campaign — one job of every kind — is first run uninterrupted
// (the golden run), then run again while being killed at every event-log
// position and restarted until it completes. At any kill position and
// any worker count the finished campaign must be indistinguishable from
// the golden run: byte-identical results, byte-identical signed
// receipts, byte-identical canonical run state — and no completed cell
// may ever execute twice (verified by cache-hit/execution accounting).

// submission is one workload entry.
type submission struct {
	kind    string
	payload string
}

// harnessWorkload is the mixed campaign: every job kind, multi-cell
// fan-outs, and a DSE sweep that shares one cell with the plain taskset
// job (the priority/coarse configuration), exercising cross-job cache
// sharing under crashes.
func harnessWorkload() []submission {
	sdlSrc := "behavior A { delay 100ns }\\nbehavior B { delay 60ns }\\ncompose main seq { A B }\\ntop main\\ntask main priority 0\\n"
	return []submission{
		{KindTaskset, tinySet},
		{KindSDL, fmt.Sprintf(`{"source": "%s"}`, sdlSrc)},
		{KindFault, `{"seeds": [3, 5], "plans": [
			{"name": "baseline", "expect_clean": true},
			{"name": "drop-irq", "drop_irq": {"prob": 1}}
		]}`},
		{KindDSE, fmt.Sprintf(`{"base": %s, "axes": [
			{"name": "policy", "values": ["priority", "edf"]},
			{"name": "timeModel", "values": ["coarse", "segmented"]}
		]}`, tinySet)},
	}
}

// uniqueCellCount derives the number of distinct cells in the workload —
// the exact number of simulations any run of it, however interrupted,
// is allowed to execute.
func uniqueCellCount(t *testing.T, work []submission) int {
	t.Helper()
	keys := map[string]bool{}
	for _, w := range work {
		_, cells, err := buildJob(w.kind, []byte(w.payload))
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cells {
			keys[c.key] = true
		}
	}
	return len(keys)
}

// artifacts is everything a finished campaign computed, in comparable
// form.
type artifacts struct {
	ids        []string
	results    [][]byte
	receipts   []receipt.Receipt
	canonical  []byte
	events     int
	executions int64 // simulations actually run, summed over all lives
}

// crashSpec arms one life's kill: die on the nth log append, writing
// torn bytes of the record first.
type crashSpec struct {
	after int
	torn  int
}

const harnessKey = "differential-harness-key"

// runCampaign drives the workload over one campaign directory through
// as many server lives as it takes: each life opens the directory
// (resuming journaled state), idempotently resubmits every payload, and
// either completes the campaign or dies at the armed crash position and
// is restarted. Every life's recovered log must rebuild cleanly.
func runCampaign(t *testing.T, dir string, jobs int, crashes []crashSpec) artifacts {
	t.Helper()
	work := harnessWorkload()
	ids := make([]string, len(work))
	var execs int64
	maxLives := len(crashes) + 60
	for life := 0; life < maxLives; life++ {
		s, err := Open(Options{Dir: dir, Jobs: jobs, Key: []byte(harnessKey)})
		if err != nil {
			t.Fatalf("life %d: %v", life, err)
		}
		if life < len(crashes) {
			s.SetCrashAfter(crashes[life].after, crashes[life].torn)
		}
		submittedAll := true
		for i, w := range work {
			id, _, err := s.Submit(w.kind, []byte(w.payload))
			if err != nil {
				// The kill landed on this accept; resubmit next life.
				submittedAll = false
				break
			}
			if ids[i] != "" && ids[i] != id {
				t.Fatalf("life %d: payload %d drifted from job %s to %s", life, i, ids[i], id)
			}
			ids[i] = id
		}
		done := submittedAll && waitAllOrHalt(t, s, ids)
		if done && !s.Halted() {
			execs += s.Executions()
			art := collectArtifacts(t, s, ids)
			art.executions = execs
			s.Close()
			return art
		}
		s.Close()
		execs += s.Executions()
		// Whatever survived the kill must still be a valid journal.
		recs, err := s.LogRecords()
		if err != nil {
			t.Fatalf("life %d: %v", life, err)
		}
		if _, err := runstate.Rebuild(recs); err != nil {
			t.Fatalf("life %d: recovered log does not rebuild: %v", life, err)
		}
	}
	t.Fatalf("campaign did not complete in %d lives", maxLives)
	return artifacts{}
}

// waitAllOrHalt waits until every job is terminal (true) or the server
// latched dead after the armed kill (false).
func waitAllOrHalt(t *testing.T, s *Server, ids []string) bool {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		allDone := true
		for _, id := range ids {
			st, ok := s.Status(id)
			if !ok {
				allDone = false
				break
			}
			switch st.Status {
			case runstate.StatusDone, runstate.StatusFailed, runstate.StatusCancelled:
			default:
				allDone = false
			}
			if !allDone {
				break
			}
		}
		if allDone {
			return true
		}
		if s.Halted() {
			return false
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign neither completed nor crashed")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func collectArtifacts(t *testing.T, s *Server, ids []string) artifacts {
	t.Helper()
	art := artifacts{ids: append([]string(nil), ids...)}
	for _, id := range ids {
		st, ok := s.Status(id)
		if !ok || st.Status != runstate.StatusDone {
			t.Fatalf("job %s finished as %+v", id, st)
		}
		res, err := s.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		rcpt, err := s.Receipt(id)
		if err != nil {
			t.Fatal(err)
		}
		if !s.VerifyReceipt(rcpt) {
			t.Fatalf("job %s receipt does not verify", id)
		}
		art.results = append(art.results, res)
		art.receipts = append(art.receipts, rcpt)
	}
	recs, err := s.LogRecords()
	if err != nil {
		t.Fatal(err)
	}
	st, err := runstate.Rebuild(recs)
	if err != nil {
		t.Fatal(err)
	}
	art.canonical = st.Canonical()
	art.events = len(recs)
	return art
}

// diffArtifacts asserts two finished campaigns are indistinguishable.
func diffArtifacts(t *testing.T, label string, golden, got artifacts) {
	t.Helper()
	for i := range golden.ids {
		if golden.ids[i] != got.ids[i] {
			t.Errorf("%s: job ID %d: %s vs %s", label, i, golden.ids[i], got.ids[i])
		}
		if !bytes.Equal(golden.results[i], got.results[i]) {
			t.Errorf("%s: job %s result bytes differ:\n--- golden\n%s\n--- got\n%s",
				label, golden.ids[i], golden.results[i], got.results[i])
		}
		if !bytes.Equal(golden.receipts[i].Payload(), got.receipts[i].Payload()) ||
			golden.receipts[i].Sig != got.receipts[i].Sig {
			t.Errorf("%s: job %s receipts differ:\n%+v\nvs\n%+v",
				label, golden.ids[i], golden.receipts[i], got.receipts[i])
		}
	}
	if !bytes.Equal(golden.canonical, got.canonical) {
		t.Errorf("%s: canonical run state differs:\n--- golden\n%s\n--- got\n%s",
			label, golden.canonical, got.canonical)
	}
}

// TestCrashResumeDifferentialMatrix is the headline gate: the campaign
// is killed once at every event-log position (with a varying torn-write
// tail) and restarted, at worker counts 1 and 8. Every resumed campaign
// must be byte-identical to the golden run and execute zero completed
// cells a second time.
func TestCrashResumeDifferentialMatrix(t *testing.T) {
	work := harnessWorkload()
	wantExecs := int64(uniqueCellCount(t, work))
	for _, jobs := range []int{1, 8} {
		jobs := jobs
		t.Run(fmt.Sprintf("jobs=%d", jobs), func(t *testing.T) {
			golden := runCampaign(t, t.TempDir(), jobs, nil)
			if golden.executions != wantExecs {
				t.Fatalf("golden run executed %d cells, want %d", golden.executions, wantExecs)
			}
			step := 1
			if testing.Short() {
				step = 5
			}
			for k := 1; k <= golden.events; k += step {
				k := k
				t.Run(fmt.Sprintf("kill@%d", k), func(t *testing.T) {
					got := runCampaign(t, t.TempDir(), jobs,
						[]crashSpec{{after: k, torn: (k % 3) * 7}})
					diffArtifacts(t, fmt.Sprintf("kill@%d", k), golden, got)
					if got.executions != wantExecs {
						t.Errorf("kill@%d: %d cells executed across lives, want %d (zero re-execution)",
							k, got.executions, wantExecs)
					}
				})
			}
		})
	}
}

// TestCrashResumeAtAnyJobsCountAgrees: the golden artifacts themselves
// are independent of worker fan-out.
func TestCrashResumeAtAnyJobsCountAgrees(t *testing.T) {
	g1 := runCampaign(t, t.TempDir(), 1, nil)
	g8 := runCampaign(t, t.TempDir(), 8, nil)
	diffArtifacts(t, "jobs=1 vs jobs=8", g1, g8)
	if g1.events != g8.events {
		t.Errorf("event counts differ: %d vs %d", g1.events, g8.events)
	}
}

// TestCrashResumeRepeatedKills: a hostile environment that kills the
// server every few log appends, life after life, still converges to the
// golden artifacts with zero re-execution.
func TestCrashResumeRepeatedKills(t *testing.T) {
	golden := runCampaign(t, t.TempDir(), 8, nil)
	crashes := make([]crashSpec, 40)
	for i := range crashes {
		crashes[i] = crashSpec{after: 3 + i%4, torn: (i * 5) % 23}
	}
	got := runCampaign(t, t.TempDir(), 8, crashes)
	diffArtifacts(t, "repeated kills", golden, got)
	if want := int64(uniqueCellCount(t, harnessWorkload())); got.executions != want {
		t.Errorf("%d cells executed across lives, want %d", got.executions, want)
	}
}

// TestResumeServesDoneJobsFromCache: reopening a finished campaign
// executes nothing — results are reassembled from the cache and verified
// against the journaled hashes.
func TestResumeServesDoneJobsFromCache(t *testing.T) {
	dir := t.TempDir()
	golden := runCampaign(t, dir, 4, nil)

	s, err := Open(Options{Dir: dir, Jobs: 4, Key: []byte(harnessKey)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	hitsBefore := s.CacheStats().Hits
	got := collectArtifacts(t, s, golden.ids)
	got.executions = golden.executions
	diffArtifacts(t, "reopen", golden, got)
	if n := s.Executions(); n != 0 {
		t.Fatalf("reopening a finished campaign executed %d cells", n)
	}
	if hits := s.CacheStats().Hits - hitsBefore; hits == 0 {
		t.Fatal("reassembled results took no cache hits")
	}
	// Idempotent resubmission after restart: same IDs, still nothing runs.
	for i, w := range harnessWorkload() {
		id, dup, err := s.Submit(w.kind, []byte(w.payload))
		if err != nil || !dup || id != golden.ids[i] {
			t.Fatalf("resubmission %d = (%s, %v, %v), want (%s, true)", i, id, dup, err, golden.ids[i])
		}
	}
	if n := s.Executions(); n != 0 {
		t.Fatalf("resubmission executed %d cells", n)
	}
}
