// Package idempotency derives content-addressed keys for campaign jobs
// and cells and arbitrates duplicate submissions. A key is a pure
// function of a submission's canonical bytes (for task sets, the same
// dse.Canonical form that keys the result cache), so a retried or
// re-sent job — after a client timeout, a server crash, or a reordered
// JSON body — lands on the same key and is answered with the original
// job instead of being executed again.
package idempotency

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// Key returns the content-addressed key for a submission of the given
// kind: "<kind>:" + sha256(canonical). Two submissions with the same
// canonical bytes are the same job.
func Key(kind string, canonical []byte) string {
	sum := sha256.Sum256(canonical)
	return kind + ":" + hex.EncodeToString(sum[:])
}

// Registry maps idempotency keys to the job IDs that own them. Claims
// are atomic: of any number of concurrent submissions with the same key,
// exactly one wins and the rest observe the winner's job ID — the
// exactly-one-execution contract the race tests pin.
type Registry struct {
	mu    sync.Mutex
	byKey map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: map[string]string{}}
}

// Claim registers id as the owner of key if the key is unclaimed, and
// returns the owning ID plus whether the claim was a duplicate (the key
// was already owned by another job).
func (r *Registry) Claim(key, id string) (owner string, dup bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.byKey[key]; ok {
		return existing, true
	}
	r.byKey[key] = id
	return id, false
}

// Lookup returns the job ID owning key, if any.
func (r *Registry) Lookup(key string) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id, ok := r.byKey[key]
	return id, ok
}

// Forget releases a key — used when a claimed job fails permanently so a
// corrected resubmission is not answered with the failure forever.
func (r *Registry) Forget(key string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.byKey, key)
}

// Len returns the number of claimed keys.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byKey)
}
