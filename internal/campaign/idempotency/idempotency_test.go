package idempotency

import (
	"fmt"
	"sync"
	"testing"
)

// TestKeyIsContentAddressed: same canonical bytes → same key; any
// difference in kind or content → different key.
func TestKeyIsContentAddressed(t *testing.T) {
	a := Key("taskset", []byte("canonical form"))
	if b := Key("taskset", []byte("canonical form")); b != a {
		t.Fatalf("identical content keyed differently: %s vs %s", a, b)
	}
	if b := Key("taskset", []byte("canonical form!")); b == a {
		t.Fatal("different content keyed identically")
	}
	if b := Key("dse", []byte("canonical form")); b == a {
		t.Fatal("different kind keyed identically")
	}
}

// TestClaimArbitration: first claim wins, later claims observe the
// winner; Forget reopens the key.
func TestClaimArbitration(t *testing.T) {
	r := NewRegistry()
	owner, dup := r.Claim("k", "job-1")
	if owner != "job-1" || dup {
		t.Fatalf("first claim = (%s, %v), want (job-1, false)", owner, dup)
	}
	owner, dup = r.Claim("k", "job-2")
	if owner != "job-1" || !dup {
		t.Fatalf("second claim = (%s, %v), want (job-1, true)", owner, dup)
	}
	if id, ok := r.Lookup("k"); !ok || id != "job-1" {
		t.Fatalf("Lookup = (%s, %v)", id, ok)
	}
	r.Forget("k")
	if owner, dup = r.Claim("k", "job-3"); owner != "job-3" || dup {
		t.Fatalf("claim after Forget = (%s, %v), want (job-3, false)", owner, dup)
	}
}

// TestConcurrentClaimsExactlyOneWinner: N racing claims on one key elect
// exactly one owner and everyone agrees on it.
func TestConcurrentClaimsExactlyOneWinner(t *testing.T) {
	r := NewRegistry()
	const n = 64
	owners := make([]string, n)
	dups := make([]bool, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			owners[i], dups[i] = r.Claim("key", fmt.Sprintf("job-%d", i))
		}(i)
	}
	wg.Wait()
	winners := 0
	for i := 0; i < n; i++ {
		if !dups[i] {
			winners++
		}
		if owners[i] != owners[0] {
			t.Fatalf("claim %d observed owner %s, claim 0 observed %s", i, owners[i], owners[0])
		}
	}
	if winners != 1 {
		t.Fatalf("%d winners, want exactly 1", winners)
	}
	if r.Len() != 1 {
		t.Fatalf("registry has %d keys, want 1", r.Len())
	}
}
