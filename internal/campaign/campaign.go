// Package campaign is the crash-resumable simulation-as-a-service core
// behind cmd/simd. A Server accepts jobs (task-set runs, SDL models,
// fault-injection batteries, DSE sweeps), fans their cells across a
// runner pool, and journals every state transition to an append-only
// checksummed event log. Killing the process at any point and reopening
// the same directory resumes the campaign: completed cells are served
// from the content-addressed result cache (never re-executed), lost
// leases are requeued, and the finished campaign's results, receipts
// and canonical run state are byte-identical to an uninterrupted run.
package campaign

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/campaign/eventlog"
	"repro/internal/campaign/idempotency"
	"repro/internal/campaign/receipt"
	"repro/internal/campaign/runstate"
	"repro/internal/dse"
	"repro/internal/runner"
	"repro/internal/telemetry"
)

// Options configures a Server.
type Options struct {
	// Dir is the campaign directory: event log, result cache, receipt
	// key. Required.
	Dir string
	// Jobs is the worker fan-out per campaign job (runner pool width).
	// 0 means runtime.NumCPU (the runner default).
	Jobs int
	// Key is the HMAC key receipts are signed with. Empty: a key is
	// generated on first open and persisted in Dir, so receipts stay
	// verifiable across restarts.
	Key []byte
	// QueueDepth bounds the pending-job queue. 0 means 1024.
	QueueDepth int
}

// Job is the server's live view of one campaign job.
type Job struct {
	ID      string
	Kind    string
	Key     string
	Payload []byte

	cells    []cellSpec
	cellDone []bool   // completed in a previous life (from the recovered log)
	cellHash []string // result hashes for recovered cells

	mu       sync.Mutex
	status   string
	err      string
	result   []byte
	resHash  string
	receipt  *receipt.Receipt
	reports  []*telemetry.Report
	requeued []string

	cancelled atomic.Bool
	done      chan struct{} // closed on any terminal status
}

// errCancelled is the internal sentinel a cancelled job's cells return.
var errCancelled = errors.New("campaign: job cancelled")

// Server is a crash-resumable campaign server over one directory.
type Server struct {
	opts  Options
	log   *eventlog.Log
	cache *dse.Cache
	reg   *idempotency.Registry
	key   []byte

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // job IDs in acceptance order
	nextID int

	queue        chan *Job
	stop         chan struct{}
	dispatchDone chan struct{}
	dead         atomic.Bool // latched on eventlog.ErrCrash (crash drill)

	execs atomic.Int64 // cells actually executed (cache misses) this life
}

// Open opens (or creates) the campaign directory, replays and verifies
// the event log, rebuilds all journaled jobs from their payloads,
// requeues unfinished work and starts the dispatcher. A structurally
// invalid log refuses startup rather than risking double execution.
func Open(opts Options) (*Server, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("campaign: Options.Dir is required")
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 1024
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	cache, err := dse.NewCache(filepath.Join(opts.Dir, "cache"))
	if err != nil {
		return nil, err
	}
	key := opts.Key
	if len(key) == 0 {
		if key, err = loadOrCreateKey(filepath.Join(opts.Dir, "receipt.key")); err != nil {
			return nil, err
		}
	}
	log, recs, err := eventlog.Open(filepath.Join(opts.Dir, "events.log"))
	if err != nil {
		return nil, err
	}
	st, err := runstate.Rebuild(recs)
	if err != nil {
		log.Close()
		return nil, fmt.Errorf("campaign: refusing to resume: %w", err)
	}
	s := &Server{
		opts:         opts,
		log:          log,
		cache:        cache,
		reg:          idempotency.NewRegistry(),
		key:          key,
		jobs:         map[string]*Job{},
		queue:        make(chan *Job, opts.QueueDepth),
		stop:         make(chan struct{}),
		dispatchDone: make(chan struct{}),
	}
	if err := s.resume(st); err != nil {
		log.Close()
		return nil, err
	}
	go s.dispatch()
	return s, nil
}

// resume rebuilds live jobs from the materialized run state and
// requeues everything unfinished, in acceptance order.
func (s *Server) resume(st *runstate.State) error {
	for _, rj := range st.Jobs {
		var id int
		if _, err := fmt.Sscanf(rj.ID, "job-%d", &id); err == nil && id >= s.nextID {
			s.nextID = id
		}
		j := &Job{
			ID:      rj.ID,
			Kind:    rj.Kind,
			Key:     rj.Key,
			Payload: rj.Payload,
			status:  rj.Status,
			err:     rj.Error,
			done:    make(chan struct{}),
		}
		// Failed and cancelled jobs stay visible but release their key so
		// a resubmission can run; everything else keeps its claim.
		switch rj.Status {
		case runstate.StatusFailed, runstate.StatusCancelled:
			close(j.done)
		default:
			if owner, dup := s.reg.Claim(rj.Key, rj.ID); dup {
				return fmt.Errorf("campaign: jobs %s and %s share idempotency key %s", owner, rj.ID, rj.Key)
			}
		}
		if rj.Status == runstate.StatusDone {
			j.resHash = rj.ResultHash
			r := *rj.Receipt
			j.receipt = &r
			close(j.done)
		}
		if rj.Status == runstate.StatusQueued || rj.Status == runstate.StatusRunning || rj.Status == runstate.StatusDone {
			// The payload is the source of truth: rebuild cells and check
			// they still derive to the journaled keys.
			key, cells, err := buildJob(rj.Kind, rj.Payload)
			if err != nil {
				return fmt.Errorf("campaign: job %s payload no longer builds: %w", rj.ID, err)
			}
			if key != rj.Key {
				return fmt.Errorf("campaign: job %s key drift: log says %s, payload derives %s", rj.ID, rj.Key, key)
			}
			if len(cells) != len(rj.Cells) {
				return fmt.Errorf("campaign: job %s cell drift: log says %d cells, payload derives %d",
					rj.ID, len(rj.Cells), len(cells))
			}
			j.cells = cells
			j.cellDone = make([]bool, len(cells))
			j.cellHash = make([]string, len(cells))
			for i, c := range rj.Cells {
				if cells[i].key != c.Key {
					return fmt.Errorf("campaign: job %s cell %d key drift: log says %s, payload derives %s",
						rj.ID, i, c.Key, cells[i].key)
				}
				j.cellDone[i] = c.Done
				j.cellHash[i] = c.Hash
			}
		}
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		if rj.Status == runstate.StatusQueued || rj.Status == runstate.StatusRunning {
			j.status = runstate.StatusQueued
			s.queue <- j
		}
	}
	return nil
}

// Submit accepts a job. A submission whose idempotency key matches an
// accepted job returns that job's ID with dup=true and runs nothing.
func (s *Server) Submit(kind string, payload []byte) (id string, dup bool, err error) {
	if s.dead.Load() {
		return "", false, eventlog.ErrCrash
	}
	key, cells, err := buildJob(kind, payload)
	if err != nil {
		return "", false, err
	}
	s.mu.Lock()
	s.nextID++
	id = fmt.Sprintf("job-%06d", s.nextID)
	owner, dup := s.reg.Claim(key, id)
	if dup {
		s.nextID-- // ID not consumed
		s.mu.Unlock()
		return owner, true, nil
	}
	cellKeys := make([]string, len(cells))
	for i, c := range cells {
		cellKeys[i] = c.key
	}
	j := &Job{
		ID: id, Kind: kind, Key: key, Payload: payload,
		cells:    cells,
		cellDone: make([]bool, len(cells)),
		cellHash: make([]string, len(cells)),
		status:   runstate.StatusQueued,
		done:     make(chan struct{}),
	}
	if err := s.log.Append(runstate.EvJobAccepted, runstate.JobAccepted{
		ID: id, Kind: kind, Key: key, Cells: cellKeys, Payload: payload,
	}); err != nil {
		s.noteLogErr(err)
		s.reg.Forget(key)
		s.nextID--
		s.mu.Unlock()
		return "", false, err
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()
	select {
	case s.queue <- j:
	default:
		// Queue full: fail the job rather than blocking the HTTP handler.
		s.finishFailed(j, fmt.Errorf("campaign: queue full (%d pending)", s.opts.QueueDepth))
	}
	return id, false, nil
}

// dispatch is the single dispatcher goroutine: jobs run one at a time
// in acceptance order (cells fan out within a job), which keeps result
// assembly deterministic at any worker count.
func (s *Server) dispatch() {
	defer close(s.dispatchDone)
	for {
		select {
		case <-s.stop:
			return
		case j := <-s.queue:
			s.process(j)
		}
	}
}

func (s *Server) process(j *Job) {
	if s.dead.Load() {
		return
	}
	if j.cancelled.Load() {
		s.finishCancelled(j)
		return
	}
	j.mu.Lock()
	j.status = runstate.StatusRunning
	j.reports = make([]*telemetry.Report, len(j.cells))
	j.mu.Unlock()

	type cellOut struct {
		bytes []byte
		hash  string
	}
	results := runner.Map(len(j.cells), runner.Options{Jobs: s.opts.Jobs, Retry: 1},
		func(i int) (cellOut, error) {
			b, err := s.runCell(j, i)
			if err != nil {
				return cellOut{}, err
			}
			sum := sha256.Sum256(b)
			return cellOut{bytes: b, hash: hex.EncodeToString(sum[:])}, nil
		})

	if s.dead.Load() {
		return // mid-crash: the resumed server finishes this job
	}
	var requeued []string
	for i, r := range results {
		if r.Err != nil {
			if errors.Is(r.Err, errCancelled) || j.cancelled.Load() {
				s.finishCancelled(j)
				return
			}
			s.finishFailed(j, fmt.Errorf("cell %d (%s): %w", i, j.cells[i].label, r.Err))
			return
		}
		if r.Attempts > 1 {
			requeued = append(requeued, j.cells[i].label)
		}
	}

	// Assemble the canonical campaign result: cells in submission order,
	// each framed with its index and label. Pure function of cell bytes.
	var out []byte
	out = append(out, fmt.Sprintf("simd-result/1 job=%s kind=%s cells=%d\n", j.ID, j.Kind, len(j.cells))...)
	for i, r := range results {
		out = append(out, fmt.Sprintf("-- cell %d %s\n", i, j.cells[i].label)...)
		out = append(out, r.Value.bytes...)
	}
	sum := sha256.Sum256(out)
	resHash := hex.EncodeToString(sum[:])

	rcpt := receipt.Sign(receipt.Receipt{
		Job: j.ID, Kind: j.Kind, Key: j.Key, Cells: len(j.cells),
		ResultHash: resHash, Requeued: requeued,
	}, s.key)
	if err := s.log.Append(runstate.EvJobDone, runstate.JobDone{
		ID: j.ID, ResultHash: resHash, Receipt: rcpt,
	}); err != nil {
		s.noteLogErr(err)
		return
	}
	j.mu.Lock()
	j.status = runstate.StatusDone
	j.result = out
	j.resHash = resHash
	j.receipt = &rcpt
	j.requeued = requeued
	j.mu.Unlock()
	close(j.done)
}

// runCell executes (or replays) one cell with the cache-through
// protocol that makes completed work crash-proof:
//
//	recovered-done cell: fetch from cache, verify hash, journal nothing
//	otherwise: journal cell.started → cache probe → on miss execute and
//	           PutBytes BEFORE journaling cell.done
//
// Because the bytes hit the cache before the completion record hits the
// log, a crash between the two costs only the journal entry: the resumed
// lease finds the bytes in the cache and never re-executes.
func (s *Server) runCell(j *Job, i int) ([]byte, error) {
	if j.cancelled.Load() {
		return nil, errCancelled
	}
	c := &j.cells[i]
	if j.cellDone[i] {
		// Completed in a previous life. The cache must hold it — PutBytes
		// happens before the done record is journaled.
		b, ok := s.cache.GetBytes(c.key)
		if !ok {
			return nil, fmt.Errorf("campaign: cell %s journaled done but absent from cache", c.key)
		}
		sum := sha256.Sum256(b)
		if h := hex.EncodeToString(sum[:]); h != j.cellHash[i] {
			return nil, fmt.Errorf("campaign: cell %s cache bytes hash %s, log says %s", c.key, h, j.cellHash[i])
		}
		return b, nil
	}
	if err := s.log.Append(runstate.EvCellStarted, runstate.CellStarted{Job: j.ID, Idx: i}); err != nil {
		s.noteLogErr(err)
		return nil, err
	}
	b, cached := s.cache.GetBytes(c.key)
	if !cached {
		var rep *telemetry.Report
		var err error
		b, rep, err = c.run()
		if err != nil {
			return nil, err
		}
		s.execs.Add(1)
		s.cache.PutBytes(c.key, b)
		if rep != nil {
			j.mu.Lock()
			j.reports[i] = rep
			j.mu.Unlock()
		}
	}
	sum := sha256.Sum256(b)
	if err := s.log.Append(runstate.EvCellDone, runstate.CellDone{
		Job: j.ID, Idx: i, Hash: hex.EncodeToString(sum[:]), Cached: cached,
	}); err != nil {
		s.noteLogErr(err)
		return nil, err
	}
	return b, nil
}

func (s *Server) finishFailed(j *Job, cause error) {
	msg := stableErr(cause)
	if err := s.log.Append(runstate.EvJobFailed, runstate.JobFailed{ID: j.ID, Error: msg}); err != nil {
		s.noteLogErr(err)
		return
	}
	j.mu.Lock()
	j.status = runstate.StatusFailed
	j.err = msg
	j.mu.Unlock()
	s.reg.Forget(j.Key)
	close(j.done)
}

func (s *Server) finishCancelled(j *Job) {
	if err := s.log.Append(runstate.EvJobCancelled, runstate.JobCancelled{ID: j.ID}); err != nil {
		s.noteLogErr(err)
		return
	}
	j.mu.Lock()
	j.status = runstate.StatusCancelled
	j.mu.Unlock()
	s.reg.Forget(j.Key)
	close(j.done)
}

// stableErr renders an error deterministically: a recovered panic keeps
// its value but drops the (address-laden, nondeterministic) stack.
func stableErr(err error) string {
	var pe *runner.PanicError
	if errors.As(err, &pe) {
		return fmt.Sprintf("panic: %v", pe.Value)
	}
	return err.Error()
}

// noteLogErr latches the server dead when the event log fails — after a
// (simulated or real) write failure nothing more may be journaled, so
// nothing more may run.
func (s *Server) noteLogErr(err error) {
	if err != nil {
		s.dead.Store(true)
	}
}

// JobStatus is a point-in-time public view of a job.
type JobStatus struct {
	ID        string            `json:"id"`
	Kind      string            `json:"kind"`
	Key       string            `json:"key"`
	Status    string            `json:"status"`
	Cells     int               `json:"cells"`
	CellsDone int               `json:"cellsDone"`
	Error     string            `json:"error,omitempty"`
	Requeued  []string          `json:"requeued,omitempty"`
	Metrics   *telemetry.Report `json:"metrics,omitempty"`
}

// Status reports a job's current state; done jobs include merged
// telemetry across all cells that produced reports this life.
func (s *Server) Status(id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.ID, Kind: j.Kind, Key: j.Key, Status: j.status,
		Cells: len(j.cells), Error: j.err, Requeued: j.requeued,
	}
	for _, done := range j.cellDone {
		if done {
			st.CellsDone++
		}
	}
	if j.status == runstate.StatusDone {
		st.CellsDone = len(j.cells)
		var reps []*telemetry.Report
		for _, r := range j.reports {
			if r != nil {
				reps = append(reps, r)
			}
		}
		if len(reps) > 0 {
			st.Metrics = telemetry.Merge(reps...)
		}
	}
	return st, true
}

// Result returns a done job's assembled result bytes. For a job that
// completed in a previous life the result is assembled lazily from the
// cache and verified against the journaled hash.
func (s *Server) Result(id string) ([]byte, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("campaign: unknown job %s", id)
	}
	j.mu.Lock()
	status, res, want := j.status, j.result, j.resHash
	j.mu.Unlock()
	if status != runstate.StatusDone {
		return nil, fmt.Errorf("campaign: job %s is %s, not done", id, status)
	}
	if res != nil {
		return res, nil
	}
	// Recovered done job: reassemble from the cache.
	var out []byte
	out = append(out, fmt.Sprintf("simd-result/1 job=%s kind=%s cells=%d\n", j.ID, j.Kind, len(j.cells))...)
	for i := range j.cells {
		b, ok := s.cache.GetBytes(j.cells[i].key)
		if !ok {
			return nil, fmt.Errorf("campaign: job %s cell %d missing from cache", id, i)
		}
		out = append(out, fmt.Sprintf("-- cell %d %s\n", i, j.cells[i].label)...)
		out = append(out, b...)
	}
	sum := sha256.Sum256(out)
	if got := hex.EncodeToString(sum[:]); got != want {
		return nil, fmt.Errorf("campaign: job %s reassembled result hash %s, log says %s", id, got, want)
	}
	j.mu.Lock()
	j.result = out
	j.mu.Unlock()
	return out, nil
}

// Receipt returns a done job's signed receipt.
func (s *Server) Receipt(id string) (receipt.Receipt, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return receipt.Receipt{}, fmt.Errorf("campaign: unknown job %s", id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.receipt == nil {
		return receipt.Receipt{}, fmt.Errorf("campaign: job %s is %s, no receipt", id, j.status)
	}
	return *j.receipt, nil
}

// Cancel requests cancellation. Queued jobs are cancelled before any
// cell runs; running jobs stop at the next cell boundary. Terminal jobs
// return an error.
func (s *Server) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("campaign: unknown job %s", id)
	}
	j.mu.Lock()
	status := j.status
	j.mu.Unlock()
	switch status {
	case runstate.StatusDone, runstate.StatusFailed, runstate.StatusCancelled:
		return fmt.Errorf("campaign: job %s already %s", id, status)
	}
	j.cancelled.Store(true)
	return nil
}

// Done returns a channel closed when the job reaches a terminal status.
func (s *Server) Done(id string) (<-chan struct{}, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	return j.done, true
}

// JobIDs returns all job IDs in acceptance order.
func (s *Server) JobIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

// Halted reports whether the server latched dead after an event-log
// failure (including the crash drill).
func (s *Server) Halted() bool { return s.dead.Load() }

// CacheStats exposes the shared result cache's hit/miss counters — the
// harness's proof that resumed campaigns re-execute nothing.
func (s *Server) CacheStats() dse.CacheStats { return s.cache.Stats() }

// Executions returns the number of cells actually executed (cache
// misses that ran a simulation) in this server's lifetime.
func (s *Server) Executions() int64 { return s.execs.Load() }

// SetCrashAfter arms the event log's crash drill: the nth Append from
// now writes only a torn prefix and the server latches dead. Test
// instrumentation for the kill-and-restart harness.
func (s *Server) SetCrashAfter(n int, torn int) { s.log.SetCrashAfter(n, torn) }

// LogRecords re-reads and decodes the event log from disk (longest
// valid prefix), for invariant checks.
func (s *Server) LogRecords() ([]eventlog.Record, error) {
	data, err := os.ReadFile(filepath.Join(s.opts.Dir, "events.log"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	recs, _ := eventlog.Decode(data)
	return recs, nil
}

// Close stops the dispatcher and closes the log. Safe after a crash
// drill.
func (s *Server) Close() error {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.dispatchDone
	return s.log.Close()
}

// VerifyReceipt checks a receipt against this server's signing key.
func (s *Server) VerifyReceipt(r receipt.Receipt) bool { return receipt.Verify(r, s.key) }

// loadOrCreateKey loads the persisted receipt-signing key, generating
// one on first use so receipts verify across restarts.
func loadOrCreateKey(path string) ([]byte, error) {
	if b, err := os.ReadFile(path); err == nil && len(b) >= 16 {
		return b, nil
	}
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, key, 0o600); err != nil {
		return nil, err
	}
	return key, nil
}
