package campaign

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/campaign/runstate"
	"repro/internal/telemetry"
)

// tinySet is a small task set: one job, one cell, fast to simulate.
const tinySet = `{
  "policy": "priority",
  "timeModel": "coarse",
  "horizonMs": 5,
  "tasks": [
    {"name": "ctrl",  "type": "periodic", "periodUs": 1000, "wcetUs": 250, "prio": 1},
    {"name": "audio", "type": "periodic", "periodUs": 2000, "wcetUs": 600, "prio": 2}
  ]
}`

// tinySetReordered is byte-different JSON with identical content — the
// canonical form (and so the idempotency key) must match tinySet's.
const tinySetReordered = `{
  "tasks": [
    {"prio": 1, "wcetUs": 250, "periodUs": 1000, "type": "periodic", "name": "ctrl"},
    {"prio": 2, "wcetUs": 600, "periodUs": 2000, "type": "periodic", "name": "audio"}
  ],
  "horizonMs": 5,
  "timeModel": "coarse",
  "policy": "priority"
}`

func openTestServer(t *testing.T, dir string, jobs int) *Server {
	t.Helper()
	s, err := Open(Options{Dir: dir, Jobs: jobs, Key: []byte("test-key")})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func waitDone(t *testing.T, s *Server, id string) {
	t.Helper()
	ch, ok := s.Done(id)
	if !ok {
		t.Fatalf("job %s unknown", id)
	}
	select {
	case <-ch:
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not reach a terminal state", id)
	}
}

func TestTasksetJobEndToEnd(t *testing.T) {
	s := openTestServer(t, t.TempDir(), 2)
	id, dup, err := s.Submit(KindTaskset, []byte(tinySet))
	if err != nil || dup {
		t.Fatalf("Submit = (%s, %v, %v)", id, dup, err)
	}
	waitDone(t, s, id)

	st, ok := s.Status(id)
	if !ok || st.Status != runstate.StatusDone || st.CellsDone != 1 {
		t.Fatalf("status = %+v", st)
	}
	if st.Metrics == nil {
		t.Fatal("done taskset job has no merged telemetry")
	}
	res, err := s.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(res, []byte("simd-result/1 ")) || !bytes.Contains(res, []byte("task name=ctrl")) {
		t.Fatalf("result:\n%s", res)
	}
	rcpt, err := s.Receipt(id)
	if err != nil {
		t.Fatal(err)
	}
	if !s.VerifyReceipt(rcpt) {
		t.Fatal("receipt does not verify")
	}
	if rcpt.Job != id || rcpt.Cells != 1 || len(rcpt.Requeued) != 0 {
		t.Fatalf("receipt = %+v", rcpt)
	}
	if n := s.Executions(); n != 1 {
		t.Fatalf("executions = %d, want 1", n)
	}
}

// TestIdempotentResubmission: resubmitting a completed job — even with
// reordered JSON — returns the original job and runs nothing.
func TestIdempotentResubmission(t *testing.T) {
	s := openTestServer(t, t.TempDir(), 2)
	id, _, err := s.Submit(KindTaskset, []byte(tinySet))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, id)
	before := s.Executions()
	missesBefore := s.CacheStats().Misses

	id2, dup, err := s.Submit(KindTaskset, []byte(tinySetReordered))
	if err != nil {
		t.Fatal(err)
	}
	if !dup || id2 != id {
		t.Fatalf("resubmission = (%s, dup=%v), want (%s, dup=true)", id2, dup, id)
	}
	if n := s.Executions(); n != before {
		t.Fatalf("resubmission executed %d cells", n-before)
	}
	if m := s.CacheStats().Misses; m != missesBefore {
		t.Fatalf("resubmission took %d cache misses", m-missesBefore)
	}
	r1, _ := s.Receipt(id)
	r2, err := s.Receipt(id2)
	if err != nil || r2.Sig != r1.Sig {
		t.Fatalf("duplicate's receipt differs: %v / %+v vs %+v", err, r2, r1)
	}
}

// TestConcurrentDuplicateSubmissions: racing identical submissions elect
// exactly one job and execute its cell exactly once.
func TestConcurrentDuplicateSubmissions(t *testing.T) {
	s := openTestServer(t, t.TempDir(), 4)
	const n = 16
	ids := make([]string, n)
	dups := make([]bool, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var err error
			ids[i], dups[i], err = s.Submit(KindTaskset, []byte(tinySet))
			if err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	winners := 0
	for i := 0; i < n; i++ {
		if !dups[i] {
			winners++
		}
		if ids[i] != ids[0] {
			t.Fatalf("submission %d got job %s, submission 0 got %s", i, ids[i], ids[0])
		}
	}
	if winners != 1 {
		t.Fatalf("%d winners, want exactly 1", winners)
	}
	waitDone(t, s, ids[0])
	if n := s.Executions(); n != 1 {
		t.Fatalf("executions = %d, want exactly 1", n)
	}
	if got := len(s.JobIDs()); got != 1 {
		t.Fatalf("%d jobs accepted, want 1", got)
	}
}

// TestDSESweepSharesCellsWithTaskset: a DSE sweep over a configuration
// already simulated as a plain taskset job serves that cell from the
// shared cache instead of re-running it.
func TestDSESweepSharesCellsWithTaskset(t *testing.T) {
	s := openTestServer(t, t.TempDir(), 2)
	id, _, err := s.Submit(KindTaskset, []byte(tinySet))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, id)
	if n := s.Executions(); n != 1 {
		t.Fatalf("executions after taskset job = %d", n)
	}

	sweep := fmt.Sprintf(`{"base": %s, "axes": [{"name": "policy", "values": ["priority", "edf", "fcfs"]}]}`, tinySet)
	did, _, err := s.Submit(KindDSE, []byte(sweep))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, did)
	st, _ := s.Status(did)
	if st.Status != runstate.StatusDone || st.Cells != 3 {
		t.Fatalf("sweep status = %+v", st)
	}
	// The "priority" configuration is the taskset job's cell: cached.
	if n := s.Executions(); n != 3 {
		t.Fatalf("executions after sweep = %d, want 3 (one cell shared)", n)
	}
	res, err := s.Result(did)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"policy=priority", "policy=edf", "policy=fcfs"} {
		if !strings.Contains(string(res), want) {
			t.Errorf("sweep result missing %s", want)
		}
	}
}

// TestCancelQueuedJob: a job cancelled while queued behind a running one
// never executes, and its idempotency key is released for resubmission.
func TestCancelQueuedJob(t *testing.T) {
	s := openTestServer(t, t.TempDir(), 1)
	// A fault battery keeps the dispatcher busy long enough to cancel the
	// job queued behind it deterministically.
	busy, _, err := s.Submit(KindFault, []byte(`{"seeds": [1, 2]}`))
	if err != nil {
		t.Fatal(err)
	}
	victim, _, err := s.Submit(KindTaskset, []byte(tinySet))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(victim); err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, victim)
	st, _ := s.Status(victim)
	if st.Status != runstate.StatusCancelled {
		t.Fatalf("victim status = %s", st.Status)
	}
	if err := s.Cancel(victim); err == nil {
		t.Fatal("cancelling a cancelled job succeeded")
	}
	// The key is free again: the same payload is a fresh job now.
	again, dup, err := s.Submit(KindTaskset, []byte(tinySet))
	if err != nil || dup || again == victim {
		t.Fatalf("resubmission after cancel = (%s, %v, %v)", again, dup, err)
	}
	waitDone(t, s, again)
	waitDone(t, s, busy)
}

// TestWorkerLossRequeuedOnceAndFlagged: a cell whose worker panics is
// re-dispatched exactly once, the recovery is flagged in the receipt,
// the result is never silently dropped, and the journal stays valid.
func TestWorkerLossRequeuedOnceAndFlagged(t *testing.T) {
	s := openTestServer(t, t.TempDir(), 2)
	var calls atomic.Int32
	j := &Job{
		ID: "job-000001", Kind: "taskset", Key: "test:panic-once",
		Payload: []byte(`{}`),
		cells: []cellSpec{{
			key:   "cell:test:panic-once",
			label: "flaky",
			run: func() ([]byte, *telemetry.Report, error) {
				if calls.Add(1) == 1 {
					panic("worker lost")
				}
				return []byte("recovered result\n"), nil, nil
			},
		}},
		cellDone: make([]bool, 1),
		cellHash: make([]string, 1),
		status:   runstate.StatusQueued,
		done:     make(chan struct{}),
	}
	if err := s.log.Append(runstate.EvJobAccepted, runstate.JobAccepted{
		ID: j.ID, Kind: j.Kind, Key: j.Key, Cells: []string{j.cells[0].key}, Payload: j.Payload,
	}); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.mu.Unlock()
	s.process(j)

	if got := calls.Load(); got != 2 {
		t.Fatalf("cell executed %d times, want exactly 2 (original + one requeue)", got)
	}
	st, _ := s.Status(j.ID)
	if st.Status != runstate.StatusDone {
		t.Fatalf("job status = %s, error = %s", st.Status, st.Error)
	}
	rcpt, err := s.Receipt(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(rcpt.Requeued) != 1 || rcpt.Requeued[0] != "flaky" {
		t.Fatalf("receipt.Requeued = %v, want [flaky]", rcpt.Requeued)
	}
	res, err := s.Result(j.ID)
	if err != nil || !bytes.Contains(res, []byte("recovered result")) {
		t.Fatalf("result lost: %v\n%s", err, res)
	}
	// The journal recorded both leases and stayed structurally valid.
	recs, err := s.LogRecords()
	if err != nil {
		t.Fatal(err)
	}
	rst, err := runstate.Rebuild(recs)
	if err != nil {
		t.Fatal(err)
	}
	rj, _ := rst.Job(j.ID)
	if rj.Cells[0].Starts != 2 || !rj.Cells[0].Done {
		t.Fatalf("journaled cell = %+v", rj.Cells[0])
	}
}

// TestWorkerLossExhaustedFailsLoudly: a cell that panics on every
// attempt fails the job with the panic value in the status — never a
// silent drop.
func TestWorkerLossExhaustedFailsLoudly(t *testing.T) {
	s := openTestServer(t, t.TempDir(), 2)
	var calls atomic.Int32
	j := &Job{
		ID: "job-000001", Kind: "taskset", Key: "test:panic-always",
		Payload: []byte(`{}`),
		cells: []cellSpec{{
			key:   "cell:test:panic-always",
			label: "doomed",
			run: func() ([]byte, *telemetry.Report, error) {
				calls.Add(1)
				panic("hardware on fire")
			},
		}},
		cellDone: make([]bool, 1),
		cellHash: make([]string, 1),
		status:   runstate.StatusQueued,
		done:     make(chan struct{}),
	}
	if err := s.log.Append(runstate.EvJobAccepted, runstate.JobAccepted{
		ID: j.ID, Kind: j.Kind, Key: j.Key, Cells: []string{j.cells[0].key}, Payload: j.Payload,
	}); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.mu.Unlock()
	s.process(j)

	if got := calls.Load(); got != 2 {
		t.Fatalf("cell executed %d times, want 2 (original + one requeue, then give up)", got)
	}
	st, _ := s.Status(j.ID)
	if st.Status != runstate.StatusFailed || !strings.Contains(st.Error, "panic: hardware on fire") {
		t.Fatalf("status = %+v", st)
	}
	if strings.Contains(st.Error, "goroutine") {
		t.Fatalf("failure message leaks a stack trace: %q", st.Error)
	}
}

// TestSubmitRejectsMalformedPayloads: invalid submissions are refused
// with the underlying validator's message; nothing is journaled or run.
func TestSubmitRejectsMalformedPayloads(t *testing.T) {
	s := openTestServer(t, t.TempDir(), 1)
	cases := []struct {
		name, kind, payload, wantErr string
	}{
		{"bad kind", "warp", `{}`, "unknown job kind"},
		{"taskset not json", KindTaskset, `{`, "unexpected end"},
		{"taskset no tasks", KindTaskset, `{"tasks": []}`, "no tasks"},
		{"taskset bad policy", KindTaskset, `{"policy": "psychic", "horizonMs": 1,
			"tasks": [{"name":"a","periodUs":100,"wcetUs":10}]}`, "psychic"},
		{"sdl empty", KindSDL, `{}`, "source"},
		{"sdl bad model", KindSDL, `{"source": "behavior B {"}`, "sdl"},
		{"fault no seeds", KindFault, `{}`, "seed"},
		{"dse no base", KindDSE, `{"axes":[{"name":"policy","values":["rr"]}]}`, "base"},
		{"dse no axes", KindDSE, fmt.Sprintf(`{"base": %s}`, tinySet), "axis"},
		{"dse unknown axis", KindDSE, fmt.Sprintf(`{"base": %s, "axes":[{"name":"magic","values":["on"]}]}`, tinySet), "magic"},
		{"dse invalid variant", KindDSE, fmt.Sprintf(`{"base": %s, "axes":[{"name":"policy","values":["psychic"]}]}`, tinySet), "psychic"},
	}
	for _, tc := range cases {
		_, _, err := s.Submit(tc.kind, []byte(tc.payload))
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
	if n := len(s.JobIDs()); n != 0 {
		t.Fatalf("%d jobs accepted from malformed payloads", n)
	}
	recs, err := s.LogRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("%d events journaled from malformed payloads", len(recs))
	}
}

// TestSDLJobEndToEnd: the SDL front end runs as a campaign job.
func TestSDLJobEndToEnd(t *testing.T) {
	s := openTestServer(t, t.TempDir(), 2)
	payload := `{"source": "behavior A { delay 100ns }\nbehavior B { delay 50ns }\ncompose main seq { A B }\ntop main\ntask main priority 0\n"}`
	id, _, err := s.Submit(KindSDL, []byte(payload))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, id)
	st, _ := s.Status(id)
	if st.Status != runstate.StatusDone {
		t.Fatalf("status = %+v", st)
	}
	res, err := s.Result(id)
	if err != nil || !bytes.Contains(res, []byte("sdl arch policy=priority")) {
		t.Fatalf("result: %v\n%s", err, res)
	}
}

// TestFaultJobEndToEnd: a fault battery fans seeds × plans into cells
// and diagnoses land in the result, not in job errors.
func TestFaultJobEndToEnd(t *testing.T) {
	s := openTestServer(t, t.TempDir(), 4)
	id, _, err := s.Submit(KindFault, []byte(`{"seeds": [7], "plans": [{"name": "drop-irq", "drop_irq": {"prob": 1}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, id)
	st, _ := s.Status(id)
	if st.Status != runstate.StatusDone || st.Cells != 1 {
		t.Fatalf("status = %+v", st)
	}
}
