// Package receipt issues and verifies signed completion receipts for
// campaign jobs. A receipt binds a job's identity (ID, kind, idempotency
// key), its cell count, the SHA-256 of its assembled result bytes and
// the list of cells that had to be requeued after a worker loss, under
// an HMAC-SHA256 signature keyed by the server's receipt key. Clients
// can hold the receipt as proof of what the campaign computed; a
// resubmitted job is answered with the original receipt, and a crash-
// resumed campaign must reissue byte-identical receipts — both pinned by
// the differential harness.
//
// Receipts deliberately carry no timestamps: they are a pure function of
// the job's content and outcome, which is what makes them comparable
// across golden and resumed runs.
package receipt

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// Receipt is one job's signed completion record.
type Receipt struct {
	Job        string   `json:"job"`  // server-assigned job ID
	Kind       string   `json:"kind"` // job kind: taskset, sdl, fault, dse
	Key        string   `json:"key"`  // idempotency key of the submission
	Cells      int      `json:"cells"`
	ResultHash string   `json:"result_hash"`        // sha256 (hex) of the assembled result bytes
	Requeued   []string `json:"requeued,omitempty"` // cells re-dispatched after a worker loss
	Sig        string   `json:"sig"`                // hex HMAC-SHA256 over Payload()
}

// Payload renders the canonical signed byte form — a fixed field order,
// newline-framed, so two receipts over the same facts serialize (and
// therefore sign) identically.
func (r Receipt) Payload() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "receipt/1\njob=%s\nkind=%s\nkey=%s\ncells=%d\nresult=%s\n",
		r.Job, r.Kind, r.Key, r.Cells, r.ResultHash)
	for _, c := range r.Requeued {
		fmt.Fprintf(&b, "requeued=%s\n", c)
	}
	return []byte(b.String())
}

// Sign returns the receipt with its signature filled in.
func Sign(r Receipt, key []byte) Receipt {
	mac := hmac.New(sha256.New, key)
	mac.Write(r.Payload())
	r.Sig = hex.EncodeToString(mac.Sum(nil))
	return r
}

// Verify reports whether the receipt's signature is valid under key.
func Verify(r Receipt, key []byte) bool {
	sig, err := hex.DecodeString(r.Sig)
	if err != nil {
		return false
	}
	mac := hmac.New(sha256.New, key)
	mac.Write(r.Payload())
	return hmac.Equal(sig, mac.Sum(nil))
}
