package receipt

import "testing"

func sample() Receipt {
	return Receipt{
		Job: "job-000001", Kind: "taskset", Key: "taskset:abc123",
		Cells: 4, ResultHash: "deadbeef", Requeued: []string{"cell-2"},
	}
}

// TestSignVerifyRoundTrip: a signed receipt verifies under its key and
// fails under any other key.
func TestSignVerifyRoundTrip(t *testing.T) {
	key := []byte("server receipt key")
	r := Sign(sample(), key)
	if r.Sig == "" {
		t.Fatal("Sign left Sig empty")
	}
	if !Verify(r, key) {
		t.Fatal("signed receipt does not verify")
	}
	if Verify(r, []byte("some other key")) {
		t.Fatal("receipt verifies under the wrong key")
	}
}

// TestTamperDetected: changing any signed field invalidates the
// signature.
func TestTamperDetected(t *testing.T) {
	key := []byte("k")
	base := Sign(sample(), key)
	mutations := map[string]func(*Receipt){
		"job":      func(r *Receipt) { r.Job = "job-000002" },
		"kind":     func(r *Receipt) { r.Kind = "dse" },
		"key":      func(r *Receipt) { r.Key = "other" },
		"cells":    func(r *Receipt) { r.Cells++ },
		"result":   func(r *Receipt) { r.ResultHash = "beefdead" },
		"requeued": func(r *Receipt) { r.Requeued = nil },
		"sig":      func(r *Receipt) { r.Sig = "00" + r.Sig[2:] },
	}
	for name, mutate := range mutations {
		r := base
		r.Requeued = append([]string(nil), base.Requeued...)
		mutate(&r)
		if Verify(r, key) {
			t.Errorf("tampered %s still verifies", name)
		}
	}
	if Verify(Receipt{Sig: "zz not hex"}, key) {
		t.Error("garbage signature verifies")
	}
}

// TestDeterministicSignature: signing the same facts twice produces the
// same bytes — receipts are pure functions of job content and outcome,
// the property that makes golden and crash-resumed receipts comparable.
func TestDeterministicSignature(t *testing.T) {
	key := []byte("k")
	a, b := Sign(sample(), key), Sign(sample(), key)
	if a.Sig != b.Sig {
		t.Fatalf("signatures differ: %s vs %s", a.Sig, b.Sig)
	}
	if string(a.Payload()) != string(b.Payload()) {
		t.Fatal("payloads differ")
	}
}
