package campaign

import (
	"fmt"
	"os"
	"testing"
	"time"
)

// TestResumeWallClockMeasurement produces the EXPERIMENTS.md "SIMD"
// resumed-vs-cold table: a 24-cell DSE sweep is run cold, then killed at
// ~25/50/75% of its event log and resumed, and finally reopened when
// already finished (pure replay). Guarded like the overhead benchmarks:
//
//	SIMD_MEASURE=1 go test -run TestResumeWallClockMeasurement -v ./internal/campaign
func TestResumeWallClockMeasurement(t *testing.T) {
	if os.Getenv("SIMD_MEASURE") == "" {
		t.Skip("set SIMD_MEASURE=1 to run the wall-clock measurement")
	}
	const base = `{
	  "policy": "priority",
	  "timeModel": "coarse",
	  "horizonMs": 50,
	  "tasks": [
	    {"name": "ctrl",  "type": "periodic", "periodUs": 500,  "wcetUs": 120, "prio": 1},
	    {"name": "audio", "type": "periodic", "periodUs": 1000, "wcetUs": 300, "prio": 2},
	    {"name": "video", "type": "periodic", "periodUs": 4000, "wcetUs": 900, "prio": 3}
	  ]
	}`
	payload := fmt.Sprintf(`{"base": %s, "axes": [
		{"name": "policy", "values": ["priority", "edf", "fcfs", "rm"]},
		{"name": "personality", "values": ["generic", "itron", "osek"]},
		{"name": "timeModel", "values": ["coarse", "segmented"]}
	]}`, base)
	const jobs = 8

	runTo := func(dir string, crash int) (time.Duration, int64, int) {
		start := time.Now()
		s, err := Open(Options{Dir: dir, Jobs: jobs, Key: []byte(harnessKey)})
		if err != nil {
			t.Fatal(err)
		}
		if crash > 0 {
			s.SetCrashAfter(crash, 9)
		}
		id, _, err := s.Submit(KindDSE, []byte(payload))
		if err != nil && crash == 0 {
			t.Fatal(err)
		}
		done := err == nil && waitAllOrHalt(t, s, []string{id})
		s.Close()
		elapsed := time.Since(start)
		recs, _ := s.LogRecords()
		if done && !s.Halted() {
			return elapsed, s.Executions(), len(recs)
		}
		return 0, s.Executions(), len(recs)
	}

	// Cold golden run: one life, no kill.
	coldDir := t.TempDir()
	tCold, coldExecs, events := runTo(coldDir, 0)
	fmt.Printf("\n| run | wall | cells executed (this life) |\n|---|---|---|\n")
	fmt.Printf("| cold (uninterrupted) | %v | %d |\n", tCold.Round(time.Millisecond), coldExecs)

	for _, frac := range []int{25, 50, 75} {
		dir := t.TempDir()
		kill := events * frac / 100
		if kill < 1 {
			kill = 1
		}
		if _, _, _ = runTo(dir, kill); true {
		}
		tResumed, execs, _ := runTo(dir, 0) // the resumed life only
		fmt.Printf("| resumed after kill at ~%d%% of the log | %v | %d |\n",
			frac, tResumed.Round(time.Millisecond), execs)
	}

	// Reopening a finished campaign: pure journal replay + cache.
	tReplay, execs, _ := runTo(coldDir, 0)
	fmt.Printf("| reopen finished (replay only) | %v | %d |\n\n", tReplay.Round(time.Millisecond), execs)
}
