// Package runstate defines the campaign server's event schema and
// materializes a replayed event log into the run state a restarted
// server resumes from: every accepted job with its payload, cell
// completion (key + result hash per cell), receipts and terminal
// statuses. Rebuild also enforces the log's structural invariants —
// events against unknown jobs, completions without a lease, conflicting
// result hashes, completions after a terminal state — so a corrupted
// store is refused loudly instead of resumed into silent double work.
//
// The state's Canonical form deliberately excludes everything that
// legitimately differs between an uninterrupted run and a kill-and-
// restarted one (lease counts, cache-served flags): a resumed campaign
// must materialize to byte-identical Canonical state, which is exactly
// what the differential harness compares.
package runstate

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/campaign/eventlog"
	"repro/internal/campaign/receipt"
)

// Event types journaled by the campaign server.
const (
	EvJobAccepted  = "job.accepted"
	EvCellStarted  = "cell.started"
	EvCellDone     = "cell.done"
	EvJobDone      = "job.done"
	EvJobFailed    = "job.failed"
	EvJobCancelled = "job.cancelled"
)

// Job statuses.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusDone      = "done"
	StatusFailed    = "failed"
	StatusCancelled = "cancelled"
)

// JobAccepted journals a submission: identity, the derived cell keys in
// cell order, and the full payload — the log is the single source of
// truth a restarted server rebuilds jobs from.
type JobAccepted struct {
	ID      string          `json:"id"`
	Kind    string          `json:"kind"`
	Key     string          `json:"key"`
	Cells   []string        `json:"cells"`
	Payload json.RawMessage `json:"payload"`
}

// CellStarted journals a cell lease: a worker is about to execute (or
// serve from cache) cell Idx of job Job. A lease without a matching
// CellDone is a lost cell: the resumed server requeues it.
type CellStarted struct {
	Job string `json:"job"`
	Idx int    `json:"idx"`
}

// CellDone journals a cell completion with the SHA-256 of its result
// bytes (which the shared result cache holds under the cell's key).
// Cached records whether the bytes came from the cache rather than a
// fresh execution.
type CellDone struct {
	Job    string `json:"job"`
	Idx    int    `json:"idx"`
	Hash   string `json:"hash"`
	Cached bool   `json:"cached,omitempty"`
}

// JobDone journals a job completion with its assembled-result hash and
// signed receipt.
type JobDone struct {
	ID         string          `json:"id"`
	ResultHash string          `json:"result_hash"`
	Receipt    receipt.Receipt `json:"receipt"`
}

// JobFailed journals a permanent job failure.
type JobFailed struct {
	ID    string `json:"id"`
	Error string `json:"error"`
}

// JobCancelled journals a cancellation.
type JobCancelled struct {
	ID string `json:"id"`
}

// Cell is one cell's materialized state.
type Cell struct {
	Key    string
	Starts int // leases observed (can exceed 1 across crashes or requeues)
	Done   bool
	Hash   string
	Cached bool
}

// Job is one job's materialized state.
type Job struct {
	ID         string
	Kind       string
	Key        string
	Status     string
	Payload    json.RawMessage
	Cells      []Cell
	ResultHash string
	Receipt    *receipt.Receipt
	Error      string
}

// DoneCells counts completed cells.
func (j *Job) DoneCells() int {
	n := 0
	for _, c := range j.Cells {
		if c.Done {
			n++
		}
	}
	return n
}

// State is the materialized run state, jobs in acceptance order.
type State struct {
	Jobs []*Job
	byID map[string]*Job
}

// Job returns the job with the given ID, if any.
func (s *State) Job(id string) (*Job, bool) {
	j, ok := s.byID[id]
	return j, ok
}

// Rebuild materializes a replayed log, enforcing the structural
// invariants above. The records must be the output of eventlog.Open or
// Decode (sequence-checked).
func Rebuild(recs []eventlog.Record) (*State, error) {
	s := &State{byID: map[string]*Job{}}
	for _, rec := range recs {
		if err := s.apply(rec); err != nil {
			return nil, fmt.Errorf("runstate: seq %d: %w", rec.Seq, err)
		}
	}
	return s, nil
}

func (s *State) apply(rec eventlog.Record) error {
	switch rec.Type {
	case EvJobAccepted:
		var e JobAccepted
		if err := json.Unmarshal(rec.Data, &e); err != nil {
			return fmt.Errorf("%s: %v", rec.Type, err)
		}
		if e.ID == "" || e.Key == "" || len(e.Cells) == 0 {
			return fmt.Errorf("%s: incomplete event %+v", rec.Type, e)
		}
		if _, ok := s.byID[e.ID]; ok {
			return fmt.Errorf("%s: duplicate job %s", rec.Type, e.ID)
		}
		j := &Job{ID: e.ID, Kind: e.Kind, Key: e.Key, Status: StatusQueued, Payload: e.Payload}
		for _, k := range e.Cells {
			j.Cells = append(j.Cells, Cell{Key: k})
		}
		s.byID[e.ID] = j
		s.Jobs = append(s.Jobs, j)

	case EvCellStarted:
		var e CellStarted
		if err := json.Unmarshal(rec.Data, &e); err != nil {
			return fmt.Errorf("%s: %v", rec.Type, err)
		}
		j, c, err := s.cell(rec.Type, e.Job, e.Idx)
		if err != nil {
			return err
		}
		c.Starts++
		j.Status = StatusRunning

	case EvCellDone:
		var e CellDone
		if err := json.Unmarshal(rec.Data, &e); err != nil {
			return fmt.Errorf("%s: %v", rec.Type, err)
		}
		j, c, err := s.cell(rec.Type, e.Job, e.Idx)
		if err != nil {
			return err
		}
		if c.Starts == 0 {
			return fmt.Errorf("%s: job %s cell %d completed without a lease", rec.Type, e.Job, e.Idx)
		}
		if c.Done && c.Hash != e.Hash {
			return fmt.Errorf("%s: job %s cell %d result hash conflict: %s vs %s",
				rec.Type, e.Job, e.Idx, c.Hash, e.Hash)
		}
		c.Done, c.Hash, c.Cached = true, e.Hash, e.Cached
		j.Status = StatusRunning

	case EvJobDone:
		var e JobDone
		if err := json.Unmarshal(rec.Data, &e); err != nil {
			return fmt.Errorf("%s: %v", rec.Type, err)
		}
		j, err := s.activeJob(rec.Type, e.ID)
		if err != nil {
			return err
		}
		if n := j.DoneCells(); n != len(j.Cells) {
			return fmt.Errorf("%s: job %s completed with %d/%d cells done", rec.Type, e.ID, n, len(j.Cells))
		}
		if e.Receipt.ResultHash != e.ResultHash {
			return fmt.Errorf("%s: job %s receipt hash %s disagrees with result hash %s",
				rec.Type, e.ID, e.Receipt.ResultHash, e.ResultHash)
		}
		r := e.Receipt
		j.Status, j.ResultHash, j.Receipt = StatusDone, e.ResultHash, &r

	case EvJobFailed:
		var e JobFailed
		if err := json.Unmarshal(rec.Data, &e); err != nil {
			return fmt.Errorf("%s: %v", rec.Type, err)
		}
		j, err := s.activeJob(rec.Type, e.ID)
		if err != nil {
			return err
		}
		j.Status, j.Error = StatusFailed, e.Error

	case EvJobCancelled:
		var e JobCancelled
		if err := json.Unmarshal(rec.Data, &e); err != nil {
			return fmt.Errorf("%s: %v", rec.Type, err)
		}
		j, err := s.activeJob(rec.Type, e.ID)
		if err != nil {
			return err
		}
		j.Status = StatusCancelled

	default:
		return fmt.Errorf("unknown event type %q", rec.Type)
	}
	return nil
}

// cell resolves a cell event's target, rejecting events against unknown
// jobs, out-of-range indices, or jobs already in a terminal state.
func (s *State) cell(typ, jobID string, idx int) (*Job, *Cell, error) {
	j, err := s.activeJob(typ, jobID)
	if err != nil {
		return nil, nil, err
	}
	if idx < 0 || idx >= len(j.Cells) {
		return nil, nil, fmt.Errorf("%s: job %s cell %d out of range (%d cells)", typ, jobID, idx, len(j.Cells))
	}
	return j, &j.Cells[idx], nil
}

func (s *State) activeJob(typ, id string) (*Job, error) {
	j, ok := s.byID[id]
	if !ok {
		return nil, fmt.Errorf("%s: unknown job %s", typ, id)
	}
	switch j.Status {
	case StatusDone, StatusFailed, StatusCancelled:
		return nil, fmt.Errorf("%s: job %s already %s", typ, id, j.Status)
	}
	return j, nil
}

// Canonical renders the state's comparison form: everything a campaign
// computed — job identities, cell result hashes, receipts, terminal
// statuses — and nothing that legitimately varies across a crash/resume
// (lease counts, cache-served flags). A resumed campaign must produce
// bytes identical to the uninterrupted run's.
func (s *State) Canonical() []byte {
	var b strings.Builder
	b.WriteString("runstate/1\n")
	for _, j := range s.Jobs {
		fmt.Fprintf(&b, "job id=%s kind=%s key=%s status=%s result=%s", j.ID, j.Kind, j.Key, j.Status, j.ResultHash)
		if j.Receipt != nil {
			fmt.Fprintf(&b, " sig=%s", j.Receipt.Sig)
		}
		if j.Error != "" {
			fmt.Fprintf(&b, " error=%q", j.Error)
		}
		b.WriteByte('\n')
		for i, c := range j.Cells {
			fmt.Fprintf(&b, "  cell %d key=%s done=%v hash=%s\n", i, c.Key, c.Done, c.Hash)
		}
	}
	return []byte(b.String())
}
