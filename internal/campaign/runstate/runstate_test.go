package runstate

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/campaign/eventlog"
	"repro/internal/campaign/receipt"
)

// script encodes a sequence of typed events into sequence-checked
// records, the shape Rebuild consumes.
func script(t *testing.T, events ...any) []eventlog.Record {
	t.Helper()
	var recs []eventlog.Record
	for _, e := range events {
		var typ string
		switch e.(type) {
		case JobAccepted:
			typ = EvJobAccepted
		case CellStarted:
			typ = EvCellStarted
		case CellDone:
			typ = EvCellDone
		case JobDone:
			typ = EvJobDone
		case JobFailed:
			typ = EvJobFailed
		case JobCancelled:
			typ = EvJobCancelled
		default:
			t.Fatalf("unknown event %T", e)
		}
		raw, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, eventlog.Record{Seq: uint64(len(recs)) + 1, Type: typ, Data: raw})
	}
	return recs
}

// TestRebuildHappyPath: accept → lease → complete → done materializes a
// finished job with its receipt.
func TestRebuildHappyPath(t *testing.T) {
	rcpt := receipt.Sign(receipt.Receipt{
		Job: "job-000001", Kind: "taskset", Key: "taskset:k", Cells: 2, ResultHash: "rh",
	}, []byte("key"))
	st, err := Rebuild(script(t,
		JobAccepted{ID: "job-000001", Kind: "taskset", Key: "taskset:k", Cells: []string{"c0", "c1"}, Payload: []byte(`{"x":1}`)},
		CellStarted{Job: "job-000001", Idx: 0},
		CellDone{Job: "job-000001", Idx: 0, Hash: "h0"},
		CellStarted{Job: "job-000001", Idx: 1},
		CellDone{Job: "job-000001", Idx: 1, Hash: "h1", Cached: true},
		JobDone{ID: "job-000001", ResultHash: "rh", Receipt: rcpt},
	))
	if err != nil {
		t.Fatal(err)
	}
	j, ok := st.Job("job-000001")
	if !ok || j.Status != StatusDone || j.ResultHash != "rh" || j.Receipt == nil || j.Receipt.Sig != rcpt.Sig {
		t.Fatalf("job = %+v", j)
	}
	if j.DoneCells() != 2 || j.Cells[0].Hash != "h0" || !j.Cells[1].Cached {
		t.Fatalf("cells = %+v", j.Cells)
	}
}

// TestRebuildResumableState: a log ending mid-campaign (a lost lease, an
// unleased cell) materializes the exact picture the resumed server needs.
func TestRebuildResumableState(t *testing.T) {
	st, err := Rebuild(script(t,
		JobAccepted{ID: "j", Kind: "fault", Key: "fault:k", Cells: []string{"c0", "c1", "c2"}},
		CellStarted{Job: "j", Idx: 0},
		CellDone{Job: "j", Idx: 0, Hash: "h0"},
		CellStarted{Job: "j", Idx: 1}, // leased, then the server died
	))
	if err != nil {
		t.Fatal(err)
	}
	j, _ := st.Job("j")
	if j.Status != StatusRunning || j.DoneCells() != 1 {
		t.Fatalf("job = %+v", j)
	}
	if j.Cells[1].Starts != 1 || j.Cells[1].Done {
		t.Fatalf("lost-lease cell = %+v", j.Cells[1])
	}
	if j.Cells[2].Starts != 0 {
		t.Fatalf("unleased cell = %+v", j.Cells[2])
	}
}

// TestRebuildInvariants: structurally broken logs are refused, not
// resumed.
func TestRebuildInvariants(t *testing.T) {
	accepted := JobAccepted{ID: "j", Kind: "taskset", Key: "k", Cells: []string{"c0"}}
	cases := map[string][]eventlog.Record{
		"unknown job": script(t, CellStarted{Job: "ghost", Idx: 0}),
		"duplicate job": script(t, accepted,
			JobAccepted{ID: "j", Kind: "taskset", Key: "k2", Cells: []string{"c0"}}),
		"cell out of range": script(t, accepted, CellStarted{Job: "j", Idx: 5}),
		"done without lease": script(t, accepted,
			CellDone{Job: "j", Idx: 0, Hash: "h"}),
		"hash conflict": script(t, accepted,
			CellStarted{Job: "j", Idx: 0},
			CellDone{Job: "j", Idx: 0, Hash: "h1"},
			CellStarted{Job: "j", Idx: 0},
			CellDone{Job: "j", Idx: 0, Hash: "h2"}),
		"done with missing cells": script(t, accepted,
			JobDone{ID: "j", ResultHash: "rh", Receipt: receipt.Receipt{ResultHash: "rh"}}),
		"receipt hash mismatch": script(t, accepted,
			CellStarted{Job: "j", Idx: 0},
			CellDone{Job: "j", Idx: 0, Hash: "h"},
			JobDone{ID: "j", ResultHash: "rh", Receipt: receipt.Receipt{ResultHash: "other"}}),
		"event after terminal": script(t, accepted,
			JobCancelled{ID: "j"},
			CellStarted{Job: "j", Idx: 0}),
	}
	for name, recs := range cases {
		if _, err := Rebuild(recs); err == nil {
			t.Errorf("%s: rebuilt without error", name)
		}
	}
}

// TestRebuildToleratesIdempotentDuplicateDone: an abandoned (timed-out)
// worker reporting the same result after the retry already did is
// harmless — same hash, no error.
func TestRebuildToleratesIdempotentDuplicateDone(t *testing.T) {
	st, err := Rebuild(script(t,
		JobAccepted{ID: "j", Kind: "taskset", Key: "k", Cells: []string{"c0"}},
		CellStarted{Job: "j", Idx: 0},
		CellDone{Job: "j", Idx: 0, Hash: "h"},
		CellDone{Job: "j", Idx: 0, Hash: "h"},
	))
	if err != nil {
		t.Fatal(err)
	}
	if j, _ := st.Job("j"); j.DoneCells() != 1 {
		t.Fatalf("job = %+v", j)
	}
}

// TestCanonicalExcludesResumeVariance: lease counts and cache flags do
// not change the canonical bytes; results and statuses do.
func TestCanonicalExcludesResumeVariance(t *testing.T) {
	base := func(extra ...any) *State {
		events := append([]any{
			JobAccepted{ID: "j", Kind: "taskset", Key: "k", Cells: []string{"c0"}},
			CellStarted{Job: "j", Idx: 0},
		}, extra...)
		st, err := Rebuild(script(t, events...))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	golden := base(CellDone{Job: "j", Idx: 0, Hash: "h"})
	// The resumed run leased the cell twice and served it from cache.
	resumed := base(
		CellStarted{Job: "j", Idx: 0},
		CellDone{Job: "j", Idx: 0, Hash: "h", Cached: true},
	)
	if !bytes.Equal(golden.Canonical(), resumed.Canonical()) {
		t.Fatalf("canonical bytes differ:\n%s\nvs\n%s", golden.Canonical(), resumed.Canonical())
	}
	other := base(CellDone{Job: "j", Idx: 0, Hash: "DIFFERENT"})
	if bytes.Equal(golden.Canonical(), other.Canonical()) {
		t.Fatal("different result hash produced identical canonical bytes")
	}
	if !strings.Contains(string(golden.Canonical()), "runstate/1") {
		t.Fatal("canonical form unversioned")
	}
}
