package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/campaign/idempotency"
	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/fault"
	"repro/internal/sdl"
	"repro/internal/sim"
	"repro/internal/simcheck"
	"repro/internal/taskset"
	"repro/internal/telemetry"
)

// Job kinds the server accepts.
const (
	KindTaskset = "taskset" // payload: a task-set JSON (internal/taskset)
	KindSDL     = "sdl"     // payload: {"source": "...", "policy", "quantumUs", "timeModel"}
	KindFault   = "fault"   // payload: {"seeds": [...], "plans": [...], "policy", ...}
	KindDSE     = "dse"     // payload: {"base": <task set>, "axes": [{"name", "values"}]}
)

// Kinds lists the accepted job kinds.
func Kinds() []string { return []string{KindTaskset, KindSDL, KindFault, KindDSE} }

// maxCells bounds a single job's fan-out; a larger campaign is submitted
// as several jobs.
const maxCells = 4096

// cellSpec is one unit of resumable work: a content-addressed key (the
// idempotency key that also addresses the shared result cache), a
// deterministic label for result assembly and receipts, and the
// execution body. Cell bytes must be a pure function of the cell key —
// that is what lets a crash-resumed cell be served from the cache
// byte-identically.
type cellSpec struct {
	key   string
	label string
	run   func() ([]byte, *telemetry.Report, error)
}

// buildJob decodes and validates a submission, derives its idempotency
// key and materializes its cells. It is a pure function of (kind,
// payload): a restarted server rebuilds the exact same cells from the
// journaled payload. Validation failures carry the underlying
// taskset/sdl/fault message for the structured HTTP error.
func buildJob(kind string, payload []byte) (key string, cells []cellSpec, err error) {
	switch kind {
	case KindTaskset:
		return buildTasksetJob(payload)
	case KindSDL:
		return buildSDLJob(payload)
	case KindFault:
		return buildFaultJob(payload)
	case KindDSE:
		return buildDSEJob(payload)
	default:
		return "", nil, fmt.Errorf("campaign: unknown job kind %q (have %v)", kind, Kinds())
	}
}

// ---- taskset jobs -----------------------------------------------------

func buildTasksetJob(payload []byte) (string, []cellSpec, error) {
	s, err := taskset.Parse(payload)
	if err != nil {
		return "", nil, err
	}
	canon := dse.Canonical(s)
	return idempotency.Key("taskset", canon), []cellSpec{tasksetCell(s)}, nil
}

// tasksetCell builds the shared taskset cell: DSE sweeps over the same
// configuration produce the same cell key, so results are shared across
// job kinds through the cache.
func tasksetCell(s *taskset.Set) cellSpec {
	return cellSpec{
		key:   idempotency.Key("cell:taskset", dse.Canonical(s)),
		label: "set",
		run:   func() ([]byte, *telemetry.Report, error) { return runTasksetCell(s) },
	}
}

func runTasksetCell(s *taskset.Set) ([]byte, *telemetry.Report, error) {
	// The live telemetry bus is a goroutine-kernel uniprocessor feature;
	// rtc and SMP runs still return full results, just no merged metrics.
	var cap *telemetry.Capture
	var bus []*telemetry.Bus
	if s.Engine != "rtc" && s.CPUs <= 1 {
		cap = telemetry.NewCapture()
		bus = append(bus, cap.Bus)
	}
	res, err := taskset.Run(s, bus...)
	if err != nil {
		return nil, nil, err
	}
	var rep *telemetry.Report
	if cap != nil {
		cap.SetEnd(res.End)
		rep = cap.Report()
	}
	return renderTasksetResult(res), rep, nil
}

// renderTasksetResult is the canonical cell byte form of one task-set
// simulation: pure simulation outcome, no wall-clock, so golden and
// resumed campaigns compare byte-identically.
func renderTasksetResult(res *taskset.Result) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "taskset policy=%s tmodel=%s personality=%s cpus=%d horizon=%d end=%d\n",
		res.Policy, res.TimeModel, res.Personality, res.CPUs, int64(res.Horizon), int64(res.End))
	st := res.Stats
	fmt.Fprintf(&b, "stats dispatches=%d ctxsw=%d preempt=%d irqs=%d idle=%d busy=%d overhead=%d\n",
		st.Dispatches, st.ContextSwitches, st.Preemptions, st.IRQs,
		int64(st.IdleTime), int64(st.BusyTime), int64(st.OverheadTime))
	for _, tr := range res.Tasks {
		fmt.Fprintf(&b, "task name=%s prio=%d activations=%d missed=%d cputime=%d\n",
			tr.Name, tr.Prio, tr.Activations, tr.Missed, int64(tr.CPUTime))
	}
	return b.Bytes()
}

// ---- sdl jobs ---------------------------------------------------------

type sdlJob struct {
	Source    string  `json:"source"`
	Policy    string  `json:"policy,omitempty"`    // default "priority"
	QuantumUs float64 `json:"quantumUs,omitempty"` // default 1000 ("rr" only)
	TimeModel string  `json:"timeModel,omitempty"` // "coarse" (default) or "segmented"
}

func (j *sdlJob) normalize() error {
	if j.Source == "" {
		return fmt.Errorf("campaign: sdl job needs a \"source\" field with the SDL model text")
	}
	if j.Policy == "" {
		j.Policy = "priority"
	}
	if j.QuantumUs <= 0 {
		j.QuantumUs = 1000
	}
	if j.TimeModel == "" {
		j.TimeModel = "coarse"
	}
	if j.TimeModel != "coarse" && j.TimeModel != "segmented" {
		return fmt.Errorf("campaign: sdl job: unknown time model %q", j.TimeModel)
	}
	if _, err := core.PolicyByName(j.Policy, sim.Time(j.QuantumUs*1000)); err != nil {
		return fmt.Errorf("campaign: sdl job: %v", err)
	}
	if _, err := sdl.Parse(j.Source); err != nil {
		return err
	}
	return nil
}

func buildSDLJob(payload []byte) (string, []cellSpec, error) {
	var j sdlJob
	if err := json.Unmarshal(payload, &j); err != nil {
		return "", nil, fmt.Errorf("campaign: sdl job: %v", err)
	}
	if err := j.normalize(); err != nil {
		return "", nil, err
	}
	canon, err := json.Marshal(j) // normalized struct: deterministic field order
	if err != nil {
		return "", nil, err
	}
	cell := cellSpec{
		key:   idempotency.Key("cell:sdl", canon),
		label: "model",
		run:   func() ([]byte, *telemetry.Report, error) { return runSDLCell(j) },
	}
	return idempotency.Key("sdl", canon), []cellSpec{cell}, nil
}

func runSDLCell(j sdlJob) ([]byte, *telemetry.Report, error) {
	// Parse fresh per execution so retried cells never share model state.
	m, err := sdl.Parse(j.Source)
	if err != nil {
		return nil, nil, err
	}
	policy, err := core.PolicyByName(j.Policy, sim.Time(j.QuantumUs*1000))
	if err != nil {
		return nil, nil, err
	}
	tm := core.TimeModelCoarse
	if j.TimeModel == "segmented" {
		tm = core.TimeModelSegmented
	}
	cap := telemetry.NewCapture()
	var b bytes.Buffer
	if m.MultiPE() {
		rec, oss, err := m.RunMapped(policy, tm, cap.Bus)
		if err != nil {
			return nil, nil, err
		}
		fmt.Fprintf(&b, "sdl mapped policy=%s tmodel=%s pes=%d\n", policy.Name(), tm, len(oss))
		names := make([]string, 0, len(oss))
		for name := range oss {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			st := oss[name].StatsSnapshot()
			fmt.Fprintf(&b, "pe name=%s dispatches=%d ctxsw=%d preempt=%d idle=%d\n",
				name, st.Dispatches, st.ContextSwitches, st.Preemptions, int64(st.IdleTime))
		}
		if err := rec.EventList(&b); err != nil {
			return nil, nil, err
		}
		return b.Bytes(), cap.Report(), nil
	}
	rec, osm, err := m.RunArchitecture(policy, tm, cap.Bus)
	if err != nil {
		return nil, nil, err
	}
	st := osm.StatsSnapshot()
	fmt.Fprintf(&b, "sdl arch policy=%s tmodel=%s\n", policy.Name(), tm)
	fmt.Fprintf(&b, "stats dispatches=%d ctxsw=%d preempt=%d irqs=%d idle=%d busy=%d\n",
		st.Dispatches, st.ContextSwitches, st.Preemptions, st.IRQs, int64(st.IdleTime), int64(st.BusyTime))
	if err := rec.EventList(&b); err != nil {
		return nil, nil, err
	}
	return b.Bytes(), cap.Report(), nil
}

// ---- fault jobs -------------------------------------------------------

type faultJob struct {
	Seeds       []int64       `json:"seeds"`
	Plans       []*fault.Plan `json:"plans,omitempty"` // empty: the default battery
	Policy      string        `json:"policy,omitempty"`
	TimeModel   string        `json:"timeModel,omitempty"`
	Personality string        `json:"personality,omitempty"`
}

func buildFaultJob(payload []byte) (string, []cellSpec, error) {
	var j faultJob
	if err := json.Unmarshal(payload, &j); err != nil {
		return "", nil, fmt.Errorf("campaign: fault job: %v", err)
	}
	if len(j.Seeds) == 0 {
		return "", nil, fmt.Errorf("campaign: fault job needs at least one seed")
	}
	if len(j.Plans) == 0 {
		j.Plans = fault.DefaultPlans()
	}
	for _, p := range j.Plans {
		if err := p.Validate(); err != nil {
			return "", nil, err
		}
	}
	if n := len(j.Seeds) * len(j.Plans); n > maxCells {
		return "", nil, fmt.Errorf("campaign: fault job fans out to %d cells (max %d); split the campaign", n, maxCells)
	}
	opt := fault.Options{Policy: j.Policy, TimeModel: j.TimeModel, Personality: j.Personality}
	canon, err := json.Marshal(j) // normalized: plans resolved, field order fixed
	if err != nil {
		return "", nil, err
	}
	var cells []cellSpec
	for _, seed := range j.Seeds {
		for _, plan := range j.Plans {
			seed, plan := seed, plan
			planJSON, err := json.Marshal(plan)
			if err != nil {
				return "", nil, err
			}
			cellCanon := fmt.Sprintf("seed=%d opt=%s plan=%s", seed, opt, planJSON)
			cells = append(cells, cellSpec{
				key:   idempotency.Key("cell:fault", []byte(cellCanon)),
				label: fmt.Sprintf("seed=%d plan=%s", seed, plan.Name),
				run: func() ([]byte, *telemetry.Report, error) {
					r := fault.RunScenario(simcheck.Generate(seed), plan, seed, opt)
					return r.DiagnosticStream(), r.Report, nil
				},
			})
		}
	}
	return idempotency.Key("fault", canon), cells, nil
}

// ---- dse jobs ---------------------------------------------------------

type dseAxis struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
}

type dseJob struct {
	Base json.RawMessage `json:"base"`
	Axes []dseAxis       `json:"axes"`
}

// dseAxes are the task-set knobs a sweep may vary — the same fork knobs
// the dse package admits.
var dseAxes = map[string]bool{
	"policy": true, "quantumUs": true, "timeModel": true,
	"personality": true, "engine": true, "horizonMs": true,
}

func buildDSEJob(payload []byte) (string, []cellSpec, error) {
	var j dseJob
	if err := json.Unmarshal(payload, &j); err != nil {
		return "", nil, fmt.Errorf("campaign: dse job: %v", err)
	}
	if len(j.Base) == 0 {
		return "", nil, fmt.Errorf("campaign: dse job needs a \"base\" task set")
	}
	base, err := taskset.Parse(j.Base)
	if err != nil {
		return "", nil, err
	}
	if len(j.Axes) == 0 {
		return "", nil, fmt.Errorf("campaign: dse job needs at least one axis")
	}
	axes := make([]dse.Axis, 0, len(j.Axes))
	for _, a := range j.Axes {
		if a.Name == "" || len(a.Values) == 0 {
			return "", nil, fmt.Errorf("campaign: dse axis needs a name and values")
		}
		if !dseAxes[a.Name] {
			names := make([]string, 0, len(dseAxes))
			for n := range dseAxes {
				names = append(names, n)
			}
			sort.Strings(names)
			return "", nil, fmt.Errorf("campaign: dse axis %q unknown (have %v)", a.Name, names)
		}
		axes = append(axes, dse.Axis{Name: a.Name, Values: a.Values})
	}
	grid := dse.Grid(axes)
	if len(grid) > maxCells {
		return "", nil, fmt.Errorf("campaign: dse grid has %d configurations (max %d); split the sweep", len(grid), maxCells)
	}
	var cells []cellSpec
	for _, cfg := range grid {
		variant, err := applyConfig(base, cfg)
		if err != nil {
			return "", nil, err
		}
		// Cell key and bytes are those of the variant's plain taskset cell:
		// a DSE sweep and a direct taskset job over the same configuration
		// share one cache entry.
		cell := tasksetCell(variant)
		cell.label = cfg.Key()
		cells = append(cells, cell)
	}
	canon := append([]byte("base="), dse.Canonical(base)...)
	for _, a := range axes {
		canon = append(canon, fmt.Sprintf("axis name=%q values=%q\n", a.Name, a.Values)...)
	}
	return idempotency.Key("dse", canon), cells, nil
}

// applyConfig returns a copy of base with the configuration's axis
// values applied, validated like any submitted task set.
func applyConfig(base *taskset.Set, cfg dse.Config) (*taskset.Set, error) {
	v := *base
	for name, val := range cfg {
		switch name {
		case "policy":
			v.Policy = val
		case "timeModel":
			v.TimeModel = val
		case "personality":
			v.Personality = val
		case "engine":
			v.Engine = val
		case "quantumUs":
			if _, err := fmt.Sscanf(val, "%g", &v.QuantumUs); err != nil {
				return nil, fmt.Errorf("campaign: dse axis quantumUs value %q is not a number", val)
			}
		case "horizonMs":
			if _, err := fmt.Sscanf(val, "%g", &v.HorizonMs); err != nil {
				return nil, fmt.Errorf("campaign: dse axis horizonMs value %q is not a number", val)
			}
		}
	}
	if err := v.Validate(); err != nil {
		return nil, fmt.Errorf("configuration %s: %w", cfg.Key(), err)
	}
	return &v, nil
}
