package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/campaign/eventlog"
)

// maxBody bounds a submission body (a 4096-cell DSE sweep is well under
// a megabyte of JSON).
const maxBody = 4 << 20

// submitRequest is the POST /jobs body.
type submitRequest struct {
	Kind    string          `json:"kind"`
	Payload json.RawMessage `json:"payload"`
}

// submitResponse is the POST /jobs reply. Duplicate reports whether the
// submission was answered by an already-accepted job (idempotent replay).
type submitResponse struct {
	ID        string `json:"id"`
	Duplicate bool   `json:"duplicate"`
}

// apiError is the structured error body every non-2xx reply carries;
// Error is the underlying validator's message (taskset.Validate,
// sdl.Parse, fault.Plan.Validate) verbatim.
type apiError struct {
	Error string `json:"error"`
}

// Handler returns the server's HTTP API:
//
//	POST /jobs              submit  {kind, payload} → {id, duplicate}
//	GET  /jobs              list all job statuses
//	GET  /jobs/{id}         one job's status
//	GET  /jobs/{id}/result  assembled result bytes (text/plain)
//	GET  /jobs/{id}/receipt signed receipt (JSON)
//	POST /jobs/{id}/cancel  request cancellation
//	GET  /stats             cache/execution counters
//	GET  /healthz           liveness (503 once the log is dead)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/receipt", s.handleReceipt)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(body) > maxBody {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("campaign: body over %d bytes", maxBody))
		return
	}
	var req submitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("campaign: bad submit body: %v", err))
		return
	}
	if req.Kind == "" || len(req.Payload) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("campaign: submit needs \"kind\" and \"payload\""))
		return
	}
	id, dup, err := s.Submit(req.Kind, req.Payload)
	if err != nil {
		if errors.Is(err, eventlog.ErrCrash) {
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		// Validation failure: the structured error carries the underlying
		// taskset/sdl/fault message so clients see exactly what to fix.
		writeError(w, http.StatusBadRequest, err)
		return
	}
	code := http.StatusAccepted
	if dup {
		code = http.StatusOK
	}
	writeJSON(w, code, submitResponse{ID: id, Duplicate: dup})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	ids := s.JobIDs()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if st, ok := s.Status(id); ok {
			out = append(out, st)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Status(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("campaign: unknown job %s", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Status(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("campaign: unknown job %s", id))
		return
	}
	res, err := s.Result(id)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(res)
}

func (s *Server) handleReceipt(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Status(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("campaign: unknown job %s", id))
		return
	}
	rcpt, err := s.Receipt(id)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, rcpt)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Status(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("campaign: unknown job %s", id))
		return
	}
	if err := s.Cancel(id); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": id, "status": "cancelling"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	cs := s.CacheStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"cacheHits":   cs.Hits,
		"cacheMisses": cs.Misses,
		"executions":  s.Executions(),
		"jobs":        len(s.JobIDs()),
		"halted":      s.Halted(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Halted() {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("campaign: event log dead; restart to resume"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "jobs": len(s.JobIDs())})
}
