package eventlog

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// sampleLog builds a valid n-record log image.
func sampleLog(n int) []byte {
	var b bytes.Buffer
	for i := 1; i <= n; i++ {
		b.Write(Encode(Record{Seq: uint64(i), Type: "cell.done", Data: []byte(`{"idx":` + string(rune('0'+i)) + `}`)}))
	}
	return b.Bytes()
}

// TestAppendReplayRoundTrip: records appended through a Log replay back
// identically through Open.
func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.log")
	l, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	type payload struct {
		Job string `json:"job"`
		Idx int    `json:"idx"`
	}
	for i := 0; i < 5; i++ {
		if err := l.Append("cell.started", payload{Job: "job-1", Idx: i}); err != nil {
			t.Fatal(err)
		}
	}
	if l.Seq() != 5 {
		t.Fatalf("Seq = %d, want 5", l.Seq())
	}
	l.Close()

	l2, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs) != 5 {
		t.Fatalf("replayed %d records, want 5", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) || r.Type != "cell.started" {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	// Appending after replay continues the sequence.
	if err := l2.Append("job.done", payload{Job: "job-1"}); err != nil {
		t.Fatal(err)
	}
	if l2.Seq() != 6 {
		t.Fatalf("Seq after resume-append = %d, want 6", l2.Seq())
	}
}

// TestRecoverTruncatedTail: a torn final record is discarded and the file
// repaired so appends continue from the last valid record.
func TestRecoverTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.log")
	img := sampleLog(3)
	recs3, _ := Decode(img)
	for cut := len(img) - 1; cut > len(img)-len(Encode(recs3[2])); cut-- {
		if err := os.WriteFile(path, img[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, recs, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 2 {
			t.Fatalf("cut %d: recovered %d records, want 2", cut, len(recs))
		}
		if err := l.Append("next", map[string]int{"v": 1}); err != nil {
			t.Fatal(err)
		}
		l.Close()
		again, recs, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		again.Close()
		if len(recs) != 3 || recs[2].Type != "next" || recs[2].Seq != 3 {
			t.Fatalf("cut %d: after repair+append got %d records, last %+v", cut, len(recs), recs[len(recs)-1])
		}
	}
}

// TestRecoverCorruptChecksum: a bit flip inside a record ends the replay
// at the last valid record instead of serving corrupted data.
func TestRecoverCorruptChecksum(t *testing.T) {
	img := sampleLog(3)
	first := Encode(Record{Seq: 1, Type: "cell.done", Data: []byte(`{"idx":1}`)})
	// Flip a payload byte of record 2.
	img[len(first)+len(magic)+12] ^= 0x20
	recs, valid := Decode(img)
	if len(recs) != 1 {
		t.Fatalf("recovered %d records, want 1", len(recs))
	}
	if valid != len(first) {
		t.Fatalf("valid prefix %d, want %d", valid, len(first))
	}
}

// TestRecoverDuplicateSequence: a replayed duplicate (or gapped) sequence
// number ends the replay — the log never fails open past a broken chain.
func TestRecoverDuplicateSequence(t *testing.T) {
	var b bytes.Buffer
	b.Write(Encode(Record{Seq: 1, Type: "a"}))
	b.Write(Encode(Record{Seq: 2, Type: "b"}))
	b.Write(Encode(Record{Seq: 2, Type: "b"})) // duplicate
	recs, _ := Decode(b.Bytes())
	if len(recs) != 2 {
		t.Fatalf("duplicate seq: recovered %d records, want 2", len(recs))
	}
	b.Reset()
	b.Write(Encode(Record{Seq: 1, Type: "a"}))
	b.Write(Encode(Record{Seq: 3, Type: "c"})) // gap
	recs, _ = Decode(b.Bytes())
	if len(recs) != 1 {
		t.Fatalf("gapped seq: recovered %d records, want 1", len(recs))
	}
}

// TestCrashDrill: the n-th append tears mid-record and latches the log
// shut; reopening recovers exactly the pre-crash records.
func TestCrashDrill(t *testing.T) {
	for torn := 0; torn < 20; torn += 7 {
		path := filepath.Join(t.TempDir(), "events.log")
		l, _, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		l.SetCrashAfter(3, torn)
		if err := l.Append("a", nil); err != nil {
			t.Fatal(err)
		}
		if err := l.Append("b", nil); err != nil {
			t.Fatal(err)
		}
		if err := l.Append("c", nil); !errors.Is(err, ErrCrash) {
			t.Fatalf("3rd append err = %v, want ErrCrash", err)
		}
		if err := l.Append("d", nil); !errors.Is(err, ErrCrash) {
			t.Fatalf("post-crash append err = %v, want ErrCrash", err)
		}
		l.Close()
		l2, recs, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		l2.Close()
		if len(recs) != 2 || recs[0].Type != "a" || recs[1].Type != "b" {
			t.Fatalf("torn %d: recovered %d records %+v, want [a b]", torn, len(recs), recs)
		}
	}
}

// FuzzEventLog: replay never panics, never accepts bytes past the valid
// prefix, and the recovered prefix is stable — decoding it again yields
// the same records, and appending a fresh record to it extends the chain
// by exactly one. The seed corpus covers the recovery cases the
// kill-and-restart harness produces: truncated tail, corrupt checksum,
// duplicate sequence.
func FuzzEventLog(f *testing.F) {
	img := sampleLog(3)
	f.Add(img)                         // fully valid
	f.Add(img[:len(img)-5])            // truncated tail
	f.Add([]byte{})                    // empty
	f.Add([]byte("EL1 deadbeef {}\n")) // corrupt checksum
	dup := append(append([]byte{}, img...), Encode(Record{Seq: 3, Type: "cell.done"})...)
	f.Add(dup) // duplicate sequence
	corrupt := append([]byte{}, img...)
	corrupt[len(img)/2] ^= 0xff
	f.Add(corrupt) // bit flip mid-log
	f.Add([]byte("garbage with no structure at all\nEL1 x\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid := Decode(data)
		if valid > len(data) {
			t.Fatalf("valid prefix %d exceeds input %d", valid, len(data))
		}
		again, validAgain := Decode(data[:valid])
		if validAgain != valid || len(again) != len(recs) {
			t.Fatalf("valid prefix unstable: %d/%d records, %d/%d bytes",
				len(again), len(recs), validAgain, valid)
		}
		for i := range recs {
			if again[i].Seq != recs[i].Seq || again[i].Type != recs[i].Type ||
				!bytes.Equal(again[i].Data, recs[i].Data) {
				t.Fatalf("record %d differs on re-decode", i)
			}
			if recs[i].Seq != uint64(i+1) {
				t.Fatalf("record %d has seq %d", i, recs[i].Seq)
			}
		}
		// The recovered prefix must accept a continuation.
		ext := append(append([]byte{}, data[:valid]...),
			Encode(Record{Seq: uint64(len(recs)) + 1, Type: "x"})...)
		extRecs, extValid := Decode(ext)
		if len(extRecs) != len(recs)+1 || extValid != len(ext) {
			t.Fatalf("continuation rejected: %d records, %d/%d bytes", len(extRecs), extValid, len(ext))
		}
	})
}
