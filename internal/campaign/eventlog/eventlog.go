// Package eventlog is the campaign server's append-only, checksummed
// journal — the single source of truth that makes every run
// crash-resumable. Each record is one line:
//
//	EL1 <crc32-hex8> <payload-json>\n
//
// where the CRC-32 (IEEE) covers the payload bytes and the payload is a
// compact JSON object carrying a strictly increasing sequence number, a
// record type and opaque data. A restarted server replays the log,
// recovers to the longest valid prefix — a truncated (torn) tail, a
// checksum mismatch or a broken sequence ends the replay at the last
// valid record, never fails open — truncates the file there and appends
// from that point on.
//
// Records deliberately carry no wall-clock time: the log of an
// uninterrupted campaign and the log of the same campaign killed and
// resumed materialize to identical run states (see campaign/runstate),
// which is the invariant the kill-and-restart differential harness
// pins.
package eventlog

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
)

// magic prefixes every record line; bump on any framing change so a log
// written by a different format version recovers to empty rather than
// misparsing.
const magic = "EL1 "

// Record is one journal entry as seen by replay.
type Record struct {
	Seq  uint64          `json:"seq"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data,omitempty"`
}

// ErrCrash is returned by Append after the crash hook has fired (see
// SetCrashAfter): the log has simulated a process kill — possibly
// leaving a torn record on disk — and accepts no further writes.
var ErrCrash = errors.New("eventlog: simulated crash (log closed to writes)")

// Decode replays a log image and returns the records of its longest
// valid prefix plus that prefix's byte length. It never fails: any
// malformed tail — torn record, bad magic, checksum mismatch, unparsable
// payload, duplicate or gapped sequence — simply ends the replay at the
// last valid record.
func Decode(data []byte) (recs []Record, valid int) {
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn tail: no newline yet
		}
		line := data[off : off+nl]
		rec, ok := decodeLine(line, uint64(len(recs))+1)
		if !ok {
			break
		}
		recs = append(recs, rec)
		off += nl + 1
		valid = off
	}
	return recs, valid
}

// decodeLine parses one framed line, enforcing the expected sequence
// number (1-based, strictly increasing without gaps).
func decodeLine(line []byte, wantSeq uint64) (Record, bool) {
	if len(line) < len(magic)+9 || string(line[:len(magic)]) != magic {
		return Record{}, false
	}
	var crc uint32
	if _, err := fmt.Sscanf(string(line[len(magic):len(magic)+8]), "%08x", &crc); err != nil {
		return Record{}, false
	}
	if line[len(magic)+8] != ' ' {
		return Record{}, false
	}
	payload := line[len(magic)+9:]
	if crc32.ChecksumIEEE(payload) != crc {
		return Record{}, false
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil || rec.Seq != wantSeq || rec.Type == "" {
		return Record{}, false
	}
	return rec, true
}

// Encode frames one record. The payload JSON is deterministic (struct
// field order), so identical records encode to identical bytes.
func Encode(rec Record) []byte {
	payload, err := json.Marshal(rec)
	if err != nil {
		panic("eventlog: marshal record: " + err.Error()) // plain data: cannot fail
	}
	out := make([]byte, 0, len(magic)+9+len(payload)+1)
	out = append(out, magic...)
	out = append(out, fmt.Sprintf("%08x", crc32.ChecksumIEEE(payload))...)
	out = append(out, ' ')
	out = append(out, payload...)
	return append(out, '\n')
}

// Log is an open journal positioned for appending. Safe for concurrent
// Append from the campaign's cell workers.
type Log struct {
	mu   sync.Mutex
	f    *os.File
	path string
	seq  uint64 // last written sequence number

	// crash drill (SetCrashAfter)
	crashArmed bool
	crashIn    int // appends until the crash fires
	torn       int // bytes of the crashing record that still reach disk
	crashed    bool
}

// Open replays (and, if the tail is damaged, repairs) the journal at
// path, returning the log positioned for appending plus the recovered
// records. A missing file starts an empty journal.
func Open(path string) (*Log, []Record, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("eventlog: %w", err)
	}
	recs, valid := Decode(data)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("eventlog: %w", err)
	}
	if valid < len(data) {
		// Torn or corrupt tail: recover to the last valid record.
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("eventlog: truncate to valid prefix: %w", err)
		}
	}
	if _, err := f.Seek(int64(valid), 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("eventlog: %w", err)
	}
	l := &Log{f: f, path: path, seq: uint64(len(recs))}
	return l, recs, nil
}

// Append journals one record of the given type with data marshaled to
// JSON, assigning the next sequence number. On a simulated crash the
// record may reach disk only partially (torn) and ErrCrash is returned;
// every subsequent Append also fails with ErrCrash without writing.
func (l *Log) Append(typ string, data any) error {
	raw, err := json.Marshal(data)
	if err != nil {
		return fmt.Errorf("eventlog: marshal %s: %w", typ, err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		return ErrCrash
	}
	rec := Encode(Record{Seq: l.seq + 1, Type: typ, Data: raw})
	if l.crashArmed {
		l.crashIn--
		if l.crashIn <= 0 {
			l.crashed = true
			torn := l.torn
			if torn > len(rec) {
				torn = len(rec)
			}
			if torn > 0 {
				l.f.Write(rec[:torn]) // best effort: the crash is the point
			}
			return ErrCrash
		}
	}
	if _, err := l.f.Write(rec); err != nil {
		return fmt.Errorf("eventlog: append: %w", err)
	}
	l.seq++
	return nil
}

// Seq returns the sequence number of the last durably appended record.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// SetCrashAfter arms the crash drill: counting from now, the n-th Append
// writes only the first torn bytes of its record (0 = nothing) and fails
// with ErrCrash, as does every Append after it. The kill-and-restart
// harness uses this to kill the server at randomized log positions with
// a randomized torn tail; operators can use it for recovery drills on a
// staging store.
func (l *Log) SetCrashAfter(n, torn int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.crashArmed = n > 0
	l.crashIn = n
	l.torn = torn
}

// Sync flushes the journal to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Sync()
}

// Close closes the underlying file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}
