package sdl

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/personality"
	"repro/internal/refine"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// RunMapped elaborates and simulates a multi-PE model: every child of the
// top par composition executes on its mapped processing element (software
// PEs run an RTOS instance under the given policy/time model, hardware
// PEs run unscheduled), with inter-PE communication over the declared
// buses and links — the mapping step of the design flow, driven from the
// model file. It returns the shared trace and the per-PE OS instances
// (software PEs only). An optional telemetry bus is attached to every
// software PE's RTOS instance, so its events carry per-PE names.
func (m *Model) RunMapped(policy core.Policy, tm core.TimeModel, bus ...*telemetry.Bus) (*trace.Recorder, map[string]*core.OS, error) {
	if !m.MultiPE() {
		return nil, nil, fmt.Errorf("sdl: RunMapped on a model without pe declarations")
	}
	k := sim.NewKernel()
	rec := trace.New("sdl-mapped")
	for _, b := range bus {
		rec.TeeMarkers(b)
	}

	pes := map[string]*arch.PE{}
	oss := map[string]*core.OS{}
	rts := map[string]personality.Runtime{}
	for _, pd := range m.PEs {
		if pd.SW {
			pe := arch.NewSWPE(k, pd.Name, policy, core.WithTimeModel(tm))
			rec.Attach(pe.OS())
			for _, b := range bus {
				b.Attach(pe.OS())
			}
			pes[pd.Name] = pe
			oss[pd.Name] = pe.OS()
			// Every software PE runs its own instance of the model's
			// personality; hardware PEs have no RTOS and keep spec channels.
			rt, err := personality.New(m.Personality, pe.OS())
			if err != nil {
				return nil, nil, err
			}
			rts[pd.Name] = rt
		} else {
			pes[pd.Name] = arch.NewHWPE(k, pd.Name)
		}
	}
	buses := map[string]*arch.Bus{}
	for _, bd := range m.Buses {
		buses[bd.Name] = arch.NewBus(k, bd.Name, bd.ArbDelay, bd.PerByte)
	}
	links := map[string]*arch.Link[int64]{}
	for _, ld := range m.Links {
		links[ld.Name] = arch.NewLink[int64](buses[ld.Bus], ld.Name,
			pes[ld.From], pes[ld.To], ld.Bytes, 0)
	}

	// Determine which PE owns each plain channel: the PE of the top-level
	// subtree(s) using it — cross-PE use of a non-link channel is an
	// error, since its synchronization layer must live on one PE.
	childPE := map[string]string{}
	for _, md := range m.Maps {
		childPE[md.Behavior] = md.PE
	}
	top := m.composeByName(m.Top)
	chanPE := map[string]string{}
	for _, childName := range top.Children {
		pe := childPE[childName]
		for _, ch := range m.channelsUsedBy(childName) {
			if m.isLink(ch) {
				continue
			}
			if owner, ok := chanPE[ch]; ok && owner != pe {
				return nil, nil, fmt.Errorf(
					"sdl: channel %q used from PEs %q and %q; declare it as a link", ch, owner, pe)
			}
			chanPE[ch] = pe
		}
	}

	// Per-PE instances: local channels plus the shared links.
	insts := map[string]*instance{}
	instFor := func(pe string) *instance {
		inst, ok := insts[pe]
		if !ok {
			inst = newInstance()
			inst.links = links
			insts[pe] = inst
		}
		return inst
	}
	for _, cd := range m.Channels {
		owner, used := chanPE[cd.Name]
		if !used {
			owner = m.PEs[0].Name // unused channels: arbitrary home
		}
		instFor(owner).makeChannel(cd, pes[owner].Factory(), rts[owner])
	}

	// Interrupts attach to the PE owning the released semaphore.
	for _, d := range m.IRQs {
		d := d
		owner, ok := chanPE[d.Releases]
		if !ok {
			return nil, nil, fmt.Errorf("sdl: irq %q releases semaphore %q that no behavior uses", d.Name, d.Releases)
		}
		sem := insts[owner].sems[d.Releases]
		irq := pes[owner].AttachISR(d.Name, 0, func(p *sim.Proc) { sem.Release(p) })
		stim := k.Spawn(d.Name+".stim", func(p *sim.Proc) {
			p.WaitFor(d.At)
			for i := 0; i < d.Count; i++ {
				if i > 0 {
					p.WaitFor(d.Every)
				}
				irq.Raise(p)
			}
		})
		stim.SetDaemon(true)
	}

	// Build and launch each top-level child on its PE.
	mapping := m.mapping()
	for _, childName := range top.Children {
		peName := childPE[childName]
		inst := instFor(peName)
		root, err := m.buildTree(childName, inst, map[string]bool{})
		if err != nil {
			return nil, nil, err
		}
		if os, sw := oss[peName]; sw {
			refine.RunArchitecture(k, os, rec, root, mapping)
		} else {
			refine.RunUnscheduled(k, rec, root)
		}
	}
	for _, os := range oss {
		os.Start(nil)
	}
	return rec, oss, k.Run()
}

// composeByName returns the compose declaration (Validate guarantees the
// multi-PE top exists and is a par compose).
func (m *Model) composeByName(name string) *ComposeDecl {
	for i := range m.Composes {
		if m.Composes[i].Name == name {
			return &m.Composes[i]
		}
	}
	return nil
}

// isLink reports whether name is a declared link.
func (m *Model) isLink(name string) bool {
	for _, l := range m.Links {
		if l.Name == name {
			return true
		}
	}
	return false
}

// channelsUsedBy walks the subtree rooted at name collecting the channel
// names its statements touch.
func (m *Model) channelsUsedBy(name string) []string {
	seen := map[string]bool{}
	var visit func(n string)
	var scan func(stmts []Stmt)
	scan = func(stmts []Stmt) {
		for _, s := range stmts {
			if s.Channel != "" {
				seen[s.Channel] = true
			}
			if s.Op == OpRepeat {
				scan(s.Body)
			}
		}
	}
	visit = func(n string) {
		for _, b := range m.Behaviors {
			if b.Name == n {
				scan(b.Stmts)
				return
			}
		}
		for _, c := range m.Composes {
			if c.Name == n {
				for _, k := range c.Children {
					visit(k)
				}
				return
			}
		}
	}
	visit(name)
	out := make([]string, 0, len(seen))
	for ch := range seen {
		out = append(out, ch)
	}
	return out
}

// buildTree recursively elaborates a behavior subtree against one PE's
// channel instance.
func (m *Model) buildTree(name string, inst *instance, visiting map[string]bool) (*refine.Behavior, error) {
	if visiting[name] {
		return nil, fmt.Errorf("sdl: behavior cycle through %q", name)
	}
	visiting[name] = true
	defer delete(visiting, name)

	for _, b := range m.Behaviors {
		if b.Name == name {
			b := b
			return refine.Leaf(b.Name, func(x refine.Exec) {
				inst.exec(x, b.Stmts)
			}), nil
		}
	}
	for _, c := range m.Composes {
		if c.Name == name {
			kids := make([]*refine.Behavior, 0, len(c.Children))
			for _, k := range c.Children {
				child, err := m.buildTree(k, inst, visiting)
				if err != nil {
					return nil, err
				}
				kids = append(kids, child)
			}
			if c.Parallel {
				return refine.Par(c.Name, kids...), nil
			}
			return refine.Seq(c.Name, kids...), nil
		}
	}
	return nil, fmt.Errorf("sdl: unknown behavior %q", name)
}
