package sdl

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/personality"
	"repro/internal/refine"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// instance is the channel set visible to one PE's behaviors during a run.
// In single-PE runs it holds every channel; in mapped runs each PE gets
// its own instance sharing the inter-PE links. Queues and semaphores are
// held behind the personality interfaces so a model's `personality`
// directive swaps their native kind without touching the interpreter
// (handshakes have no personality mapping and stay spec-level).
type instance struct {
	queues     map[string]personality.Queue
	sems       map[string]personality.Semaphore
	handshakes map[string]*channel.Handshake
	links      map[string]*arch.Link[int64]
}

func newInstance() *instance {
	return &instance{
		queues:     map[string]personality.Queue{},
		sems:       map[string]personality.Semaphore{},
		handshakes: map[string]*channel.Handshake{},
		links:      map[string]*arch.Link[int64]{},
	}
}

// makeChannel instantiates one declared channel into inst, through the
// personality runtime when one is present (architecture models on a
// software PE) and through the PE factory otherwise (specification
// model, hardware PEs).
func (inst *instance) makeChannel(c ChannelDecl, f channel.Factory, rt personality.Runtime) {
	switch c.Kind {
	case ChanQueue:
		if rt != nil {
			inst.queues[c.Name] = rt.NewQueue(c.Name, c.Arg)
		} else {
			inst.queues[c.Name] = channel.NewQueue[int64](f, c.Name, c.Arg)
		}
	case ChanSemaphore:
		if rt != nil {
			inst.sems[c.Name] = rt.NewSemaphore(c.Name, c.Arg)
		} else {
			inst.sems[c.Name] = channel.NewSemaphore(f, c.Name, c.Arg)
		}
	case ChanHandshake:
		inst.handshakes[c.Name] = channel.NewHandshake(f, c.Name)
	}
}

// build instantiates channels, behaviors, stimuli and ISRs on a PE and
// returns the root behavior tree — the SDL equivalent of elaborating a
// SpecC design. The PE's factory performs the synchronization refinement,
// so one builder serves both models; rt (nil for the specification
// model) selects the RTOS personality carrying the channels.
func (m *Model) build(pe *arch.PE, rec *trace.Recorder, rt personality.Runtime) (*refine.Behavior, error) {
	f := pe.Factory()
	inst := newInstance()
	for _, c := range m.Channels {
		inst.makeChannel(c, f, rt)
	}
	// In the pre-mapping views (unscheduled specification, single-PE
	// architecture) inter-PE links are still plain message channels — the
	// bus only exists after mapping.
	for _, l := range m.Links {
		inst.makeChannel(ChannelDecl{Name: l.Name, Kind: ChanQueue, Arg: 1}, f, rt)
	}

	// Interrupts: ISR releases the semaphore; a stimulus process raises
	// the line at the declared times.
	for _, d := range m.IRQs {
		d := d
		sem := inst.sems[d.Releases]
		irq := pe.AttachISR(d.Name, 0, func(p *sim.Proc) { sem.Release(p) })
		stim := pe.Kernel().Spawn(d.Name+".stim", func(p *sim.Proc) {
			p.WaitFor(d.At)
			for i := 0; i < d.Count; i++ {
				if i > 0 {
					p.WaitFor(d.Every)
				}
				irq.Raise(p)
			}
		})
		stim.SetDaemon(true)
	}

	// Behaviors: leaves first, then composites (which may reference both
	// leaves and earlier composites).
	built := map[string]*refine.Behavior{}
	for _, b := range m.Behaviors {
		b := b
		built[b.Name] = refine.Leaf(b.Name, func(x refine.Exec) {
			inst.exec(x, b.Stmts)
		})
	}
	for _, c := range m.Composes {
		kids := make([]*refine.Behavior, 0, len(c.Children))
		for _, k := range c.Children {
			child, ok := built[k]
			if !ok {
				return nil, fmt.Errorf("sdl: compose %q references %q before its declaration", c.Name, k)
			}
			kids = append(kids, child)
		}
		if c.Parallel {
			built[c.Name] = refine.Par(c.Name, kids...)
		} else {
			built[c.Name] = refine.Seq(c.Name, kids...)
		}
	}
	root, ok := built[m.Top]
	if !ok {
		return nil, fmt.Errorf("sdl: top %q not built", m.Top)
	}
	return root, nil
}

// exec interprets a statement list in a behavior body.
func (inst *instance) exec(x refine.Exec, stmts []Stmt) {
	p := x.Proc()
	for _, s := range stmts {
		switch s.Op {
		case OpDelay:
			x.Delay(s.Dur)
		case OpSend:
			if q, ok := inst.queues[s.Channel]; ok {
				q.Send(p, s.Value)
			} else {
				inst.links[s.Channel].Send(p, s.Value)
			}
		case OpRecv:
			if q, ok := inst.queues[s.Channel]; ok {
				q.Recv(p)
			} else {
				inst.links[s.Channel].Recv(p)
			}
		case OpAcquire:
			inst.sems[s.Channel].Acquire(p)
		case OpRelease:
			inst.sems[s.Channel].Release(p)
		case OpSignal:
			inst.handshakes[s.Channel].Signal(p)
		case OpWaitSig:
			inst.handshakes[s.Channel].WaitSig(p)
		case OpMarker:
			x.Marker(s.Label, s.Value)
		case OpRepeat:
			for i := 0; i < s.Count; i++ {
				inst.exec(x, s.Body)
			}
		}
	}
}

// mapping converts the task declarations into a refinement mapping.
func (m *Model) mapping() refine.Mapping {
	mp := refine.Mapping{}
	for _, t := range m.Tasks {
		spec := refine.TaskSpec{Priority: t.Priority}
		if t.Periodic {
			spec.Type = core.Periodic
			spec.Period = t.Period
			spec.WCET = t.WCET
		}
		mp[t.Behavior] = spec
	}
	return mp
}

// RunUnscheduled elaborates and simulates the specification model. The
// `personality` directive does not apply here: the specification model
// has no RTOS, so channels are always the spec-level primitives.
func (m *Model) RunUnscheduled() (*trace.Recorder, error) {
	k := sim.NewKernel()
	pe := arch.NewHWPE(k, "PE")
	rec := trace.New("sdl-spec")
	root, err := m.build(pe, rec, nil)
	if err != nil {
		return nil, err
	}
	refine.RunUnscheduled(k, rec, root)
	return rec, k.Run()
}

// RunArchitecture elaborates and simulates the RTOS-based architecture
// model under the given policy and time model; the model's `personality`
// directive (default generic) selects the RTOS API whose native channel
// kinds carry the declared queues and semaphores. An optional telemetry
// bus is attached to the RTOS instance.
func (m *Model) RunArchitecture(policy core.Policy, tm core.TimeModel, bus ...*telemetry.Bus) (*trace.Recorder, *core.OS, error) {
	k := sim.NewKernel()
	pe := arch.NewSWPE(k, "PE", policy, core.WithTimeModel(tm))
	rec := trace.New("sdl-arch")
	rec.Attach(pe.OS())
	for _, b := range bus {
		b.Attach(pe.OS())
		rec.TeeMarkers(b)
	}
	rt, err := personality.New(m.Personality, pe.OS())
	if err != nil {
		return nil, nil, err
	}
	root, err := m.build(pe, rec, rt)
	if err != nil {
		return nil, nil, err
	}
	refine.RunArchitecture(k, pe.OS(), rec, root, m.mapping())
	pe.OS().Start(nil)
	return rec, pe.OS(), k.Run()
}
