package sdl

import (
	"testing"
)

// FuzzParse drives the SDL parser with arbitrary input. The properties
// under test: Parse never panics, always returns exactly one of (model,
// error), and is a pure function of its input (the same source parses to
// the same outcome twice — the parser keeps no hidden state).
//
// The seed corpus combines the valid grammar from sdl_test.go with every
// malformed-input family from parse_error_test.go; additional corpus
// entries live in testdata/fuzz/FuzzParse.
func FuzzParse(f *testing.F) {
	seeds := []string{
		// Valid sources covering the whole grammar.
		`channel c1 queue 1
behavior B1 { delay 100ns send c1 1 }
behavior B2 { recv c1 marker got 0 }
compose main par { B1 B2 }
top main
task B1 priority 1
task B2 priority 2`,
		`channel s semaphore 0
behavior isr { delay 1ns }
behavior drv { acquire s marker woke 0 }
compose main par { drv }
top main
irq ext at 280ns releases s`,
		`behavior w { repeat 4 { delay 10ns marker step 0 } }
compose main seq { w }
top main
task main priority 0 period 100ns`,
		`behavior a { delay 5ns signal hs }
behavior b { waitsig hs }
channel hs handshake 0
compose main par { a b }
top main`,
		// Malformed inputs: one per parser error family.
		`channel`,
		`channel q queue x`,
		`behavior a delay 1`,
		`behavior a { delay soon } top a`,
		"channel q queue 1\nbehavior a { send q } top a",
		`behavior a { marker m } top a`,
		`behavior a { repeat x { } } top a`,
		`behavior a { repeat 3 delay 1 } top a`,
		`behavior a { delay 1 } compose m pipe { a } top m`,
		`behavior a { delay 1 } compose m seq { a`,
		"channel s semaphore 0\nbehavior a { delay 1 } top a\nirq x releases s",
		"channel s semaphore 0\nbehavior a { delay 1 } top a\nirq x at never releases s",
		"channel s semaphore 0\nbehavior a { delay 1 } top a\nirq x at 5 releases s every 10",
		`behavior a { delay 1 } top a task a`,
		`behavior a { delay 1 } top a task a priority high`,
		`behavior a { delay 1 } top a task a priority 1 period soon`,
		`behavior a { delay -5 } top a`,
		`behavior a { repeat -1 { delay 1 } } top a`,
		"channel q queue 1\nbehavior a { acquire q } top a",
		"channel s semaphore 0\nbehavior a { waitsig s } top a",
		"channel c queue 1\nchannel c queue 1\nbehavior a { delay 1 } top a",
		`behavior a { delay 1 } compose m seq { } top m`,
		`banana`,
		`behavior a { delay 1 }`,
		`behavior a { frob 1 } top a`,
		`behavior a { send q 1 } top a`,
		`behavior a { delay 1 } behavior a { delay 1 } top a`,
		`behavior a { delay 1 } compose m seq { a ghost } top m`,
		`behavior a { delay 1`,
		`behavior a { delay 1 } top a task ghost priority 1`,
		"", " ", "\n", "{", "}", "top", "task", "irq", "compose m",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		m1, err1 := Parse(src)
		if (m1 == nil) == (err1 == nil) {
			t.Fatalf("Parse returned model=%v err=%v: want exactly one", m1 != nil, err1)
		}
		m2, err2 := Parse(src)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("Parse is not deterministic: err1=%v err2=%v", err1, err2)
		}
		if err1 != nil && err1.Error() != err2.Error() {
			t.Fatalf("Parse error message not deterministic: %q vs %q", err1, err2)
		}
		if m1 != nil {
			if m1.Top == "" {
				t.Fatalf("accepted model has no top behavior")
			}
			if len(m2.Behaviors) != len(m1.Behaviors) || len(m2.Channels) != len(m1.Channels) {
				t.Fatalf("Parse model shape not deterministic")
			}
		}
	})
}
