// Package sdl implements a small textual system-design language for
// describing specification models — behaviors with delay annotations,
// channels, interrupts and task mappings — and running them through the
// design flow (unscheduled and RTOS-based architecture models). It plays
// the role SpecC source plays for the paper: models as files rather than
// programs, consumed by the cmd/slsim tool.
//
// Example (the paper's Figure 3):
//
//	channel c1 queue 1
//	channel c2 queue 1
//	channel sem semaphore 0
//
//	behavior B1 { delay 100ns }
//	behavior B2 {
//	    delay 40ns
//	    marker c1-send 0
//	    send c1 1
//	    delay 120ns
//	    delay 70ns
//	    recv c2
//	    delay 50ns
//	}
//	behavior B3 {
//	    delay 50ns
//	    recv c1
//	    delay 80ns
//	    acquire sem
//	    marker ext-data 0
//	    delay 60ns
//	    send c2 2
//	    delay 40ns
//	}
//
//	compose workers par { B2 B3 }
//	compose main seq { B1 workers }
//	top main
//
//	irq irq0 at 280ns releases sem
//
//	task main priority 0
//	task B2 priority 2
//	task B3 priority 1
//
// Statements have fixed arity, so no terminators are needed; '#' starts a
// comment running to end of line. Times are integers with an optional
// ns/us/ms/s suffix.
//
// Multi-PE models add the mapping layer (testdata/pipeline2pe.sdl):
//
//	pe CPU0 sw                                   # software PE (RTOS instance)
//	pe ACC hw                                    # hardware PE (unscheduled)
//	bus sysbus arb 100ns perbyte 10ns
//	link data over sysbus from CPU0 to ACC bytes 8
//	map cpu0work to CPU0                         # top-level par children -> PEs
//
// Links are used with the same send/recv statements as queues; before
// mapping (RunUnscheduled / RunArchitecture) they behave as plain message
// channels, after mapping (RunMapped) they travel over the arbitrated bus
// with the ISR→semaphore→driver receive path.
package sdl

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/personality"
	"repro/internal/sim"
)

// ChannelKind enumerates the declarable channel types.
type ChannelKind int

const (
	// ChanQueue is a bounded FIFO (arg = capacity).
	ChanQueue ChannelKind = iota
	// ChanSemaphore is a counting semaphore (arg = initial count).
	ChanSemaphore
	// ChanHandshake is a latched signal.
	ChanHandshake
	// ChanLink is an inter-PE message link over a bus (multi-PE models
	// only; declared with "link", not "channel").
	ChanLink
)

// ChannelDecl declares a channel.
type ChannelDecl struct {
	Name string
	Kind ChannelKind
	Arg  int
}

// StmtOp enumerates leaf-behavior statements.
type StmtOp int

const (
	OpDelay StmtOp = iota
	OpSend
	OpRecv
	OpAcquire
	OpRelease
	OpSignal
	OpWaitSig
	OpMarker
	OpRepeat
)

// Stmt is one statement of a leaf behavior.
type Stmt struct {
	Op      StmtOp
	Dur     sim.Time // OpDelay
	Channel string   // channel-using ops
	Value   int64    // OpSend / OpMarker argument
	Label   string   // OpMarker
	Count   int      // OpRepeat
	Body    []Stmt   // OpRepeat
}

// BehaviorDecl is a leaf behavior (statement list).
type BehaviorDecl struct {
	Name  string
	Stmts []Stmt
}

// ComposeDecl composes previously declared behaviors sequentially or in
// parallel.
type ComposeDecl struct {
	Name     string
	Parallel bool
	Children []string
}

// IRQDecl declares an external interrupt releasing a semaphore, possibly
// periodic.
type IRQDecl struct {
	Name     string
	At       sim.Time
	Releases string
	Every    sim.Time // 0: one-shot
	Count    int      // repetitions when Every > 0
}

// TaskDecl maps a behavior to an RTOS task in the architecture model.
type TaskDecl struct {
	Behavior string
	Priority int
	Period   sim.Time
	WCET     sim.Time
	Periodic bool
}

// PEDecl declares a processing element for multi-PE models.
type PEDecl struct {
	Name string
	SW   bool // software PE with an RTOS instance; false = hardware
	CPUs int  // 0/1: uniprocessor (the only mapped configuration)
}

// BusDecl declares a shared bus.
type BusDecl struct {
	Name     string
	ArbDelay sim.Time
	PerByte  sim.Time
}

// LinkDecl declares an inter-PE message link synthesized over a bus; its
// name is usable in send/recv statements like a queue.
type LinkDecl struct {
	Name     string
	Bus      string
	From, To string // PE names
	Bytes    int
}

// MapDecl assigns a top-level behavior (a child of the top composition)
// to a PE.
type MapDecl struct {
	Behavior string
	PE       string
}

// Model is a parsed SDL file.
type Model struct {
	Channels    []ChannelDecl
	Behaviors   []BehaviorDecl
	Composes    []ComposeDecl
	IRQs        []IRQDecl
	Tasks       []TaskDecl
	PEs         []PEDecl
	Buses       []BusDecl
	Links       []LinkDecl
	Maps        []MapDecl
	Top         string
	Personality string // RTOS personality for architecture runs ("" = generic)
}

// MultiPE reports whether the model declares processing elements (and
// therefore must be run with RunMapped).
func (m *Model) MultiPE() bool { return len(m.PEs) > 0 }

// parser state over a token stream.
type parser struct {
	toks []string
	pos  int
}

// Parse parses SDL source into a Model and validates it.
func Parse(src string) (*Model, error) {
	p := &parser{toks: tokenize(src)}
	m := &Model{}
	for !p.done() {
		word := p.next()
		var err error
		switch word {
		case "channel":
			err = p.channel(m)
		case "behavior":
			err = p.behavior(m)
		case "compose":
			err = p.compose(m)
		case "irq":
			err = p.irq(m)
		case "task":
			err = p.task(m)
		case "pe":
			err = p.pe(m)
		case "bus":
			err = p.bus(m)
		case "link":
			err = p.link(m)
		case "map":
			err = p.mapDecl(m)
		case "top":
			m.Top, err = p.ident()
		case "personality":
			m.Personality, err = p.ident()
		default:
			err = fmt.Errorf("unexpected %q at top level", word)
		}
		if err != nil {
			return nil, fmt.Errorf("sdl: %v", err)
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// tokenize splits on whitespace, treating braces as their own tokens and
// '#' comments as line-terminated.
func tokenize(src string) []string {
	var toks []string
	for _, line := range strings.Split(src, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.ReplaceAll(line, "{", " { ")
		line = strings.ReplaceAll(line, "}", " } ")
		toks = append(toks, strings.Fields(line)...)
	}
	return toks
}

func (p *parser) done() bool { return p.pos >= len(p.toks) }

func (p *parser) next() string {
	if p.done() {
		return ""
	}
	t := p.toks[p.pos]
	p.pos++
	return t
}

func (p *parser) peek() string {
	if p.done() {
		return ""
	}
	return p.toks[p.pos]
}

func (p *parser) expect(tok string) error {
	if got := p.next(); got != tok {
		return fmt.Errorf("expected %q, got %q", tok, got)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.next()
	if t == "" || t == "{" || t == "}" {
		return "", fmt.Errorf("expected identifier, got %q", t)
	}
	return t, nil
}

func (p *parser) int() (int, error) {
	t := p.next()
	v, err := strconv.Atoi(t)
	if err != nil {
		return 0, fmt.Errorf("expected integer, got %q", t)
	}
	return v, nil
}

func (p *parser) int64() (int64, error) {
	t := p.next()
	v, err := strconv.ParseInt(t, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("expected integer, got %q", t)
	}
	return v, nil
}

// time parses an integer with optional ns/us/ms/s suffix.
func (p *parser) time() (sim.Time, error) {
	return ParseTime(p.next())
}

// ParseTime converts "280", "280ns", "20us", "5ms" or "1s" to sim.Time.
func ParseTime(t string) (sim.Time, error) {
	unit := sim.Time(1)
	num := t
	switch {
	case strings.HasSuffix(t, "ns"):
		num = t[:len(t)-2]
	case strings.HasSuffix(t, "us"):
		num, unit = t[:len(t)-2], sim.Microsecond
	case strings.HasSuffix(t, "ms"):
		num, unit = t[:len(t)-2], sim.Millisecond
	case strings.HasSuffix(t, "s"):
		num, unit = t[:len(t)-1], sim.Second
	}
	v, err := strconv.ParseInt(num, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad time %q", t)
	}
	return sim.Time(v) * unit, nil
}

func (p *parser) channel(m *Model) error {
	name, err := p.ident()
	if err != nil {
		return err
	}
	kind := p.next()
	d := ChannelDecl{Name: name}
	switch kind {
	case "queue":
		d.Kind = ChanQueue
		if d.Arg, err = p.int(); err != nil {
			return err
		}
	case "semaphore":
		d.Kind = ChanSemaphore
		if d.Arg, err = p.int(); err != nil {
			return err
		}
	case "handshake":
		d.Kind = ChanHandshake
	default:
		return fmt.Errorf("channel %s: unknown kind %q", name, kind)
	}
	m.Channels = append(m.Channels, d)
	return nil
}

func (p *parser) behavior(m *Model) error {
	name, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect("{"); err != nil {
		return fmt.Errorf("behavior %s: %v", name, err)
	}
	stmts, err := p.stmts(name)
	if err != nil {
		return err
	}
	m.Behaviors = append(m.Behaviors, BehaviorDecl{Name: name, Stmts: stmts})
	return nil
}

// stmts parses statements until the closing brace.
func (p *parser) stmts(owner string) ([]Stmt, error) {
	var out []Stmt
	for {
		tok := p.next()
		switch tok {
		case "}":
			return out, nil
		case "":
			return nil, fmt.Errorf("behavior %s: missing }", owner)
		case "delay":
			d, err := p.time()
			if err != nil {
				return nil, err
			}
			out = append(out, Stmt{Op: OpDelay, Dur: d})
		case "send":
			ch, err := p.ident()
			if err != nil {
				return nil, err
			}
			v, err := p.int64()
			if err != nil {
				return nil, err
			}
			out = append(out, Stmt{Op: OpSend, Channel: ch, Value: v})
		case "recv", "acquire", "release", "signal", "waitsig":
			ch, err := p.ident()
			if err != nil {
				return nil, err
			}
			op := map[string]StmtOp{"recv": OpRecv, "acquire": OpAcquire,
				"release": OpRelease, "signal": OpSignal, "waitsig": OpWaitSig}[tok]
			out = append(out, Stmt{Op: op, Channel: ch})
		case "marker":
			label, err := p.ident()
			if err != nil {
				return nil, err
			}
			v, err := p.int64()
			if err != nil {
				return nil, err
			}
			out = append(out, Stmt{Op: OpMarker, Label: label, Value: v})
		case "repeat":
			n, err := p.int()
			if err != nil {
				return nil, err
			}
			if err := p.expect("{"); err != nil {
				return nil, err
			}
			body, err := p.stmts(owner)
			if err != nil {
				return nil, err
			}
			out = append(out, Stmt{Op: OpRepeat, Count: n, Body: body})
		default:
			return nil, fmt.Errorf("behavior %s: unknown statement %q", owner, tok)
		}
	}
}

func (p *parser) compose(m *Model) error {
	name, err := p.ident()
	if err != nil {
		return err
	}
	mode := p.next()
	if mode != "seq" && mode != "par" {
		return fmt.Errorf("compose %s: expected seq or par, got %q", name, mode)
	}
	if err := p.expect("{"); err != nil {
		return fmt.Errorf("compose %s: %v", name, err)
	}
	var kids []string
	for {
		tok := p.next()
		if tok == "}" {
			break
		}
		if tok == "" {
			return fmt.Errorf("compose %s: missing }", name)
		}
		kids = append(kids, tok)
	}
	m.Composes = append(m.Composes, ComposeDecl{Name: name, Parallel: mode == "par", Children: kids})
	return nil
}

func (p *parser) irq(m *Model) error {
	name, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect("at"); err != nil {
		return err
	}
	at, err := p.time()
	if err != nil {
		return err
	}
	if err := p.expect("releases"); err != nil {
		return err
	}
	sem, err := p.ident()
	if err != nil {
		return err
	}
	d := IRQDecl{Name: name, At: at, Releases: sem, Count: 1}
	if p.peek() == "every" {
		p.next()
		if d.Every, err = p.time(); err != nil {
			return err
		}
		if err := p.expect("count"); err != nil {
			return err
		}
		if d.Count, err = p.int(); err != nil {
			return err
		}
	}
	m.IRQs = append(m.IRQs, d)
	return nil
}

func (p *parser) task(m *Model) error {
	beh, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect("priority"); err != nil {
		return err
	}
	prio, err := p.int()
	if err != nil {
		return err
	}
	d := TaskDecl{Behavior: beh, Priority: prio}
	for p.peek() == "period" || p.peek() == "wcet" {
		switch p.next() {
		case "period":
			if d.Period, err = p.time(); err != nil {
				return err
			}
			d.Periodic = true
		case "wcet":
			if d.WCET, err = p.time(); err != nil {
				return err
			}
		}
	}
	m.Tasks = append(m.Tasks, d)
	return nil
}

// pe parses: pe NAME sw|hw [cpus N]
func (p *parser) pe(m *Model) error {
	name, err := p.ident()
	if err != nil {
		return err
	}
	kind := p.next()
	if kind != "sw" && kind != "hw" {
		return fmt.Errorf("pe %s: expected sw or hw, got %q", name, kind)
	}
	d := PEDecl{Name: name, SW: kind == "sw"}
	if p.peek() == "cpus" {
		p.next()
		if d.CPUs, err = p.int(); err != nil {
			return fmt.Errorf("pe %s: %v", name, err)
		}
		if d.CPUs < 1 {
			return fmt.Errorf("pe %s: cpus %d must be >= 1", name, d.CPUs)
		}
	}
	m.PEs = append(m.PEs, d)
	return nil
}

// bus parses: bus NAME arb TIME perbyte TIME
func (p *parser) bus(m *Model) error {
	name, err := p.ident()
	if err != nil {
		return err
	}
	d := BusDecl{Name: name}
	if err := p.expect("arb"); err != nil {
		return err
	}
	if d.ArbDelay, err = p.time(); err != nil {
		return err
	}
	if err := p.expect("perbyte"); err != nil {
		return err
	}
	if d.PerByte, err = p.time(); err != nil {
		return err
	}
	m.Buses = append(m.Buses, d)
	return nil
}

// link parses: link NAME over BUS from PE to PE bytes N
func (p *parser) link(m *Model) error {
	name, err := p.ident()
	if err != nil {
		return err
	}
	d := LinkDecl{Name: name}
	for _, kw := range []struct {
		word string
		dst  *string
	}{{"over", &d.Bus}, {"from", &d.From}, {"to", &d.To}} {
		if err := p.expect(kw.word); err != nil {
			return fmt.Errorf("link %s: %v", name, err)
		}
		if *kw.dst, err = p.ident(); err != nil {
			return err
		}
	}
	if err := p.expect("bytes"); err != nil {
		return fmt.Errorf("link %s: %v", name, err)
	}
	if d.Bytes, err = p.int(); err != nil {
		return err
	}
	m.Links = append(m.Links, d)
	return nil
}

// mapDecl parses: map BEHAVIOR to PE
func (p *parser) mapDecl(m *Model) error {
	beh, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect("to"); err != nil {
		return err
	}
	pe, err := p.ident()
	if err != nil {
		return err
	}
	m.Maps = append(m.Maps, MapDecl{Behavior: beh, PE: pe})
	return nil
}

// Validate checks cross-references: channels used by statements and IRQs
// exist, compose children exist, top exists, no duplicate names.
func (m *Model) Validate() error {
	if m.Top == "" {
		return fmt.Errorf("sdl: no top declaration")
	}
	if !personality.Valid(m.Personality) {
		return fmt.Errorf("sdl: unknown personality %q (have %v)", m.Personality, personality.Kinds())
	}
	for _, pe := range m.PEs {
		// Reject impossible mappings at parse time rather than deep inside
		// a simulation run: the RTOS model (and every personality layered
		// on it) is uniprocessor, so an SMP software PE has no builder.
		if pe.CPUs > 1 {
			if !pe.SW {
				return fmt.Errorf("sdl: pe %q: cpus %d on a hardware PE; hw PEs are unscheduled and have no CPU count", pe.Name, pe.CPUs)
			}
			if m.Personality != "" {
				return fmt.Errorf("sdl: pe %q: personality %q models a uniprocessor RTOS and cannot run on %d CPUs; declare one sw pe per CPU or drop the personality directive",
					pe.Name, m.Personality, pe.CPUs)
			}
			return fmt.Errorf("sdl: pe %q: cpus %d: SMP software PEs are not supported by the mapped builder; declare one sw pe per CPU", pe.Name, pe.CPUs)
		}
	}
	chans := map[string]ChannelKind{}
	for _, c := range m.Channels {
		if _, dup := chans[c.Name]; dup {
			return fmt.Errorf("sdl: duplicate channel %q", c.Name)
		}
		chans[c.Name] = c.Kind
	}
	for _, l := range m.Links {
		if _, dup := chans[l.Name]; dup {
			return fmt.Errorf("sdl: link %q collides with a channel", l.Name)
		}
		chans[l.Name] = ChanLink
	}
	names := map[string]bool{}
	for _, b := range m.Behaviors {
		if names[b.Name] {
			return fmt.Errorf("sdl: duplicate behavior %q", b.Name)
		}
		names[b.Name] = true
		if err := checkStmts(b.Name, b.Stmts, chans); err != nil {
			return err
		}
	}
	for _, c := range m.Composes {
		if names[c.Name] {
			return fmt.Errorf("sdl: duplicate behavior %q", c.Name)
		}
		names[c.Name] = true
		if len(c.Children) == 0 {
			return fmt.Errorf("sdl: compose %q has no children", c.Name)
		}
	}
	for _, c := range m.Composes {
		for _, k := range c.Children {
			if !names[k] {
				return fmt.Errorf("sdl: compose %q references unknown behavior %q", c.Name, k)
			}
		}
	}
	if !names[m.Top] {
		return fmt.Errorf("sdl: top behavior %q not declared", m.Top)
	}
	for _, irq := range m.IRQs {
		if kind, ok := chans[irq.Releases]; !ok || kind != ChanSemaphore {
			return fmt.Errorf("sdl: irq %q must release a declared semaphore, got %q", irq.Name, irq.Releases)
		}
	}
	for _, t := range m.Tasks {
		if !names[t.Behavior] {
			return fmt.Errorf("sdl: task mapping references unknown behavior %q", t.Behavior)
		}
	}
	if m.MultiPE() {
		if err := m.validateMultiPE(names); err != nil {
			return err
		}
	} else if len(m.Buses) > 0 || len(m.Links) > 0 || len(m.Maps) > 0 {
		return fmt.Errorf("sdl: bus/link/map declarations require pe declarations")
	}
	return nil
}

// validateMultiPE checks the mapping layer's cross-references.
func (m *Model) validateMultiPE(names map[string]bool) error {
	pes := map[string]bool{}
	for _, pe := range m.PEs {
		if pes[pe.Name] {
			return fmt.Errorf("sdl: duplicate pe %q", pe.Name)
		}
		pes[pe.Name] = true
	}
	buses := map[string]bool{}
	for _, b := range m.Buses {
		if buses[b.Name] {
			return fmt.Errorf("sdl: duplicate bus %q", b.Name)
		}
		buses[b.Name] = true
	}
	for _, l := range m.Links {
		if !buses[l.Bus] {
			return fmt.Errorf("sdl: link %q over unknown bus %q", l.Name, l.Bus)
		}
		if !pes[l.From] || !pes[l.To] {
			return fmt.Errorf("sdl: link %q connects unknown PEs %q->%q", l.Name, l.From, l.To)
		}
		if l.From == l.To {
			return fmt.Errorf("sdl: link %q connects PE %q to itself", l.Name, l.From)
		}
		if l.Bytes < 0 {
			return fmt.Errorf("sdl: link %q has negative size", l.Name)
		}
	}
	mapped := map[string]string{}
	for _, md := range m.Maps {
		if !names[md.Behavior] {
			return fmt.Errorf("sdl: map of unknown behavior %q", md.Behavior)
		}
		if !pes[md.PE] {
			return fmt.Errorf("sdl: map of %q to unknown pe %q", md.Behavior, md.PE)
		}
		if _, dup := mapped[md.Behavior]; dup {
			return fmt.Errorf("sdl: behavior %q mapped twice", md.Behavior)
		}
		mapped[md.Behavior] = md.PE
	}
	// The top composition's children partition onto PEs.
	for _, c := range m.Composes {
		if c.Name != m.Top {
			continue
		}
		if !c.Parallel {
			return fmt.Errorf("sdl: multi-PE top %q must be a par composition", m.Top)
		}
		for _, k := range c.Children {
			if _, ok := mapped[k]; !ok {
				return fmt.Errorf("sdl: top-level behavior %q is not mapped to a pe", k)
			}
		}
		return nil
	}
	return fmt.Errorf("sdl: multi-PE top %q must be a declared par composition", m.Top)
}

func checkStmts(owner string, stmts []Stmt, chans map[string]ChannelKind) error {
	for _, s := range stmts {
		switch s.Op {
		case OpSend, OpRecv:
			if kind, ok := chans[s.Channel]; !ok || (kind != ChanQueue && kind != ChanLink) {
				return fmt.Errorf("sdl: behavior %s: %q is not a declared queue", owner, s.Channel)
			}
		case OpAcquire, OpRelease:
			if kind, ok := chans[s.Channel]; !ok || kind != ChanSemaphore {
				return fmt.Errorf("sdl: behavior %s: %q is not a declared semaphore", owner, s.Channel)
			}
		case OpSignal, OpWaitSig:
			if kind, ok := chans[s.Channel]; !ok || kind != ChanHandshake {
				return fmt.Errorf("sdl: behavior %s: %q is not a declared handshake", owner, s.Channel)
			}
		case OpDelay:
			if s.Dur < 0 {
				return fmt.Errorf("sdl: behavior %s: negative delay", owner)
			}
		case OpRepeat:
			if s.Count < 0 {
				return fmt.Errorf("sdl: behavior %s: negative repeat count", owner)
			}
			if err := checkStmts(owner, s.Body, chans); err != nil {
				return err
			}
		}
	}
	return nil
}
