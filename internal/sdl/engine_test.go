package sdl

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The rtc engine must reproduce the goroutine architecture model byte for
// byte on SDL models: hierarchical seq/par behaviors, handshakes, markers
// and the split stimulus/ISR interrupt path. These tests extend the
// engine-equivalence gate (internal/simcheck pins flat task sets; here
// the full SDL corpus) and pin golden traces for the example models.

// sdlCorpus lists the models under test: figure3 (the paper's running
// example), the vocoder twin, and the bus-driver handshake example.
func sdlCorpus(t *testing.T) map[string]string {
	t.Helper()
	corpus := map[string]string{"figure3": figure3SDL}
	for _, name := range []string{"vocoder", "busdriver"} {
		src, err := os.ReadFile(filepath.Join("testdata", name+".sdl"))
		if err != nil {
			t.Fatal(err)
		}
		corpus[name] = string(src)
	}
	return corpus
}

// renderArch renders an architecture run to its canonical byte form —
// the record stream plus the final counters and end time (the same shape
// simcheck's serializeSingle pins for flat workloads).
func renderArch(recs []trace.Record, stats core.Stats, end sim.Time) []byte {
	var b bytes.Buffer
	for _, r := range recs {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "stats %+v end %v\n", stats, end)
	return b.Bytes()
}

// runGoroutine runs the goroutine architecture model and renders it.
func runGoroutine(t *testing.T, m *Model, policy string, quantum sim.Time, tm core.TimeModel) []byte {
	t.Helper()
	pol, err := core.PolicyByName(policy, quantum)
	if err != nil {
		t.Fatal(err)
	}
	rec, osi, err := m.RunArchitecture(pol, tm)
	if err != nil {
		t.Fatalf("goroutine run: %v", err)
	}
	defer osi.Kernel().Shutdown()
	return renderArch(rec.Records(), osi.StatsSnapshot(), osi.Kernel().Now())
}

// runRTC runs the same model on the run-to-completion engine.
func runRTC(t *testing.T, m *Model, policy string, quantum sim.Time, tm core.TimeModel) []byte {
	t.Helper()
	res, err := m.RunArchitectureRTC(policy, quantum, tm, sim.Time(1)*sim.Second)
	if err != nil {
		t.Fatalf("rtc run: %v", err)
	}
	return renderArch(res.Records, res.Stats, res.End)
}

func firstDiff(a, b []byte) string {
	al := bytes.Split(a, []byte("\n"))
	bl := bytes.Split(b, []byte("\n"))
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("line %d:\n  goroutine: %s\n  rtc:       %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length: goroutine %d lines, rtc %d lines", len(al), len(bl))
}

// TestEngineEquivalenceSDL drives every corpus model through both engines
// across the scheduling-policy and time-model matrix and requires
// byte-identical traces, stats and end times.
func TestEngineEquivalenceSDL(t *testing.T) {
	configs := []struct {
		policy  string
		quantum sim.Time
		tm      core.TimeModel
	}{
		{"priority", 0, core.TimeModelCoarse},
		{"priority", 0, core.TimeModelSegmented},
		{"fcfs", 0, core.TimeModelCoarse},
		{"rr", 20 * sim.Microsecond, core.TimeModelCoarse},
		{"edf", 0, core.TimeModelCoarse},
		{"edf", 0, core.TimeModelSegmented},
	}
	for name, src := range sdlCorpus(t) {
		for _, cfg := range configs {
			t.Run(fmt.Sprintf("%s/%s/%v", name, cfg.policy, cfg.tm), func(t *testing.T) {
				m, err := Parse(src)
				if err != nil {
					t.Fatal(err)
				}
				g := runGoroutine(t, m, cfg.policy, cfg.quantum, cfg.tm)
				r := runRTC(t, m, cfg.policy, cfg.quantum, cfg.tm)
				if !bytes.Equal(g, r) {
					t.Fatalf("engines diverge on %s (%s, %v):\n%s", name, cfg.policy, cfg.tm, firstDiff(g, r))
				}
			})
		}
	}
}

// TestEngineEquivalenceSDLPersonalities repeats the comparison under the
// ITRON and OSEK personalities, whose native channel kinds replace the
// generic queue/semaphore ports.
func TestEngineEquivalenceSDLPersonalities(t *testing.T) {
	for name, src := range sdlCorpus(t) {
		for _, pers := range []string{"itron", "osek"} {
			t.Run(name+"/"+pers, func(t *testing.T) {
				m, err := Parse(src)
				if err != nil {
					t.Fatal(err)
				}
				m.Personality = pers
				if err := m.Validate(); err != nil {
					t.Fatal(err)
				}
				g := runGoroutine(t, m, "priority", 0, core.TimeModelCoarse)
				r := runRTC(t, m, "priority", 0, core.TimeModelCoarse)
				if !bytes.Equal(g, r) {
					t.Fatalf("engines diverge on %s/%s:\n%s", name, pers, firstDiff(g, r))
				}
			})
		}
	}
}

// TestGoldenTracesSDL pins the default-configuration (priority, coarse)
// architecture trace of every corpus model, rendered identically by both
// engines. Regenerate with -update after an intentional semantic change.
var update = os.Getenv("UPDATE_GOLDEN") != ""

func TestGoldenTracesSDL(t *testing.T) {
	for name, src := range sdlCorpus(t) {
		t.Run(name, func(t *testing.T) {
			m, err := Parse(src)
			if err != nil {
				t.Fatal(err)
			}
			g := runGoroutine(t, m, "priority", 0, core.TimeModelCoarse)
			r := runRTC(t, m, "priority", 0, core.TimeModelCoarse)
			if !bytes.Equal(g, r) {
				t.Fatalf("engines diverge on %s:\n%s", name, firstDiff(g, r))
			}
			golden := filepath.Join("testdata", "golden", name+".arch.trace")
			if update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, g, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("golden trace missing (run with UPDATE_GOLDEN=1 to record): %v", err)
			}
			if !bytes.Equal(g, want) {
				t.Fatalf("trace deviates from golden %s:\n%s", golden, firstDiff(want, g))
			}
		})
	}
}

// TestRTCWorkloadRejectsMultiPE pins the single-PE restriction.
func TestRTCWorkloadRejectsMultiPE(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", "pipeline2pe.sdl"))
	if err != nil {
		t.Skipf("no multi-PE fixture: %v", err)
	}
	m, err := Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RTCWorkload("priority", 0, core.TimeModelCoarse, sim.Second); err == nil {
		t.Fatal("RTCWorkload accepted a multi-PE model")
	}
}
