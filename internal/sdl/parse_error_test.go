package sdl

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// Exhaustive parser-error cases: every grammar production's failure paths.
func TestParserErrorPaths(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"channel-no-name", `channel`, "identifier"},
		{"channel-bad-arg", `channel q queue x`, "integer"},
		{"behavior-no-brace", `behavior a delay 1`, "expected"},
		{"delay-bad-time", `behavior a { delay soon } top a`, "bad time"},
		{"send-missing-value", `channel q queue 1
			behavior a { send q } top a`, "integer"},
		{"marker-missing-arg", `behavior a { marker m } top a`, "integer"},
		{"repeat-bad-count", `behavior a { repeat x { } } top a`, "integer"},
		{"repeat-no-brace", `behavior a { repeat 3 delay 1 } top a`, "expected"},
		{"compose-bad-mode", `behavior a { delay 1 } compose m pipe { a } top m`, "seq or par"},
		{"compose-missing-brace", `behavior a { delay 1 } compose m seq { a`, "missing }"},
		{"irq-missing-at", `channel s semaphore 0
			behavior a { delay 1 } top a
			irq x releases s`, "expected"},
		{"irq-bad-time", `channel s semaphore 0
			behavior a { delay 1 } top a
			irq x at never releases s`, "bad time"},
		{"irq-every-no-count", `channel s semaphore 0
			behavior a { delay 1 } top a
			irq x at 5 releases s every 10`, "expected"},
		{"task-missing-priority", `behavior a { delay 1 } top a task a`, "expected"},
		{"task-bad-priority", `behavior a { delay 1 } top a task a priority high`, "integer"},
		{"task-bad-period", `behavior a { delay 1 } top a task a priority 1 period soon`, "bad time"},
		{"negative-delay", `behavior a { delay -5 } top a`, "negative delay"},
		{"acquire-wrong-kind", `channel q queue 1
			behavior a { acquire q } top a`, "not a declared semaphore"},
		{"waitsig-wrong-kind", `channel s semaphore 0
			behavior a { waitsig s } top a`, "not a declared handshake"},
		{"dup-channel", `channel c queue 1
			channel c queue 1
			behavior a { delay 1 } top a`, "duplicate channel"},
		{"empty-compose", `behavior a { delay 1 } compose m seq { } top m`, "no children"},
		{"stray-token", `banana`, "unexpected"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want containing %q", err, c.want)
			}
		})
	}
}

// TestNegativeRepeatRejected covers the repeat-count validation.
func TestNegativeRepeatRejected(t *testing.T) {
	_, err := Parse(`behavior a { repeat -1 { delay 1 } } top a`)
	if err == nil || !strings.Contains(err.Error(), "negative repeat") {
		t.Errorf("err = %v", err)
	}
}

// TestArchitectureRunOfRepeatModel exercises the repeat statement in the
// RTOS-backed model too.
func TestArchitectureRunOfRepeatModel(t *testing.T) {
	src := `
behavior w { repeat 4 { delay 10ns marker step 0 } }
compose main seq { w }
top main
task main priority 0
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := m.RunArchitecture(core.PriorityPolicy{}, core.TimeModelCoarse)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(rec.MarkerTimes("step")); n != 4 {
		t.Errorf("steps = %d, want 4", n)
	}
}
