package sdl

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// figure3SDL is the paper's Figure 3 example written in the SDL frontend;
// semantics must match internal/models.BuildFigure3 with default
// parameters.
const figure3SDL = `
# The paper's Figure 3 example.
channel c1 queue 1
channel c2 queue 1
channel sem semaphore 0

behavior B1 { delay 100ns }
behavior B2 {
    delay 40ns
    marker c1-send 0
    send c1 1
    delay 120ns
    delay 70ns
    recv c2
    marker c2-recv 0
    delay 50ns
}
behavior B3 {
    delay 50ns
    recv c1
    marker c1-recv 0
    delay 80ns
    acquire sem
    marker ext-data 0
    delay 60ns
    marker c2-send 0
    send c2 2
    delay 40ns
}

compose workers par { B2 B3 }
compose main seq { B1 workers }
top main

irq irq0 at 280ns releases sem

task main priority 0
task B2 priority 2
task B3 priority 1
`

func TestParseFigure3(t *testing.T) {
	m, err := Parse(figure3SDL)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Channels) != 3 || len(m.Behaviors) != 3 || len(m.Composes) != 2 {
		t.Errorf("parsed %d channels, %d behaviors, %d composes",
			len(m.Channels), len(m.Behaviors), len(m.Composes))
	}
	if m.Top != "main" {
		t.Errorf("top = %q", m.Top)
	}
	if len(m.IRQs) != 1 || m.IRQs[0].At != 280 || m.IRQs[0].Releases != "sem" {
		t.Errorf("irq = %+v", m.IRQs)
	}
	if len(m.Tasks) != 3 {
		t.Errorf("tasks = %+v", m.Tasks)
	}
}

func TestFigure3SDLMatchesNativeModel(t *testing.T) {
	m, err := Parse(figure3SDL)
	if err != nil {
		t.Fatal(err)
	}
	// Unscheduled: same milestones as models.Figure3Unscheduled defaults.
	spec, err := m.RunUnscheduled()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		label string
		want  sim.Time
	}{{"c1-send", 140}, {"ext-data", 280}, {"c2-send", 340}} {
		ts := spec.MarkerTimes(c.label)
		if len(ts) != 1 || ts[0] != c.want {
			t.Errorf("spec %s at %v, want [%v]", c.label, ts, c.want)
		}
	}
	if spec.End() != 390 {
		t.Errorf("spec end = %v, want 390", spec.End())
	}

	// Architecture: the delayed preemption t4' = 390.
	arch, osm, err := m.RunArchitecture(core.PriorityPolicy{}, core.TimeModelCoarse)
	if err != nil {
		t.Fatal(err)
	}
	if ts := arch.MarkerTimes("ext-data"); len(ts) != 1 || ts[0] != 390 {
		t.Errorf("arch ext-data at %v, want [390]", ts)
	}
	if arch.End() != 610 {
		t.Errorf("arch end = %v, want 610", arch.End())
	}
	if ov := arch.Overlap("B2", "B3"); ov != 0 {
		t.Errorf("arch overlap = %v, want 0", ov)
	}
	if osm.StatsSnapshot().ContextSwitches < 4 {
		t.Errorf("context switches = %d", osm.StatsSnapshot().ContextSwitches)
	}
}

func TestRepeatAndPeriodicIRQ(t *testing.T) {
	src := `
channel data semaphore 0
behavior worker {
    repeat 3 {
        acquire data
        delay 10us
        marker done 0
    }
}
compose main seq { worker }
top main
irq tick at 100us releases data every 100us count 3
task main priority 0
task worker priority 1
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := m.RunUnscheduled()
	if err != nil {
		t.Fatal(err)
	}
	ts := rec.MarkerTimes("done")
	if len(ts) != 3 {
		t.Fatalf("done markers = %v, want 3", ts)
	}
	want := []sim.Time{110 * sim.Microsecond, 210 * sim.Microsecond, 310 * sim.Microsecond}
	for i := range want {
		if ts[i] != want[i] {
			t.Errorf("done[%d] at %v, want %v", i, ts[i], want[i])
		}
	}
}

func TestHandshakeStatements(t *testing.T) {
	src := `
channel hs handshake
behavior a { delay 5ns signal hs }
behavior b { waitsig hs marker got 0 }
compose main par { a b }
top main
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := m.RunUnscheduled()
	if err != nil {
		t.Fatal(err)
	}
	if ts := rec.MarkerTimes("got"); len(ts) != 1 || ts[0] != 5 {
		t.Errorf("got at %v, want [5]", ts)
	}
}

func TestParseTime(t *testing.T) {
	cases := []struct {
		in   string
		want sim.Time
	}{
		{"7", 7}, {"100ns", 100}, {"20us", 20 * sim.Microsecond},
		{"5ms", 5 * sim.Millisecond}, {"1s", sim.Second},
	}
	for _, c := range cases {
		got, err := ParseTime(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseTime(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParseTime("fast"); err == nil {
		t.Error("bad time accepted")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"no-top", `behavior a { delay 1 }`, "no top"},
		{"unknown-stmt", `behavior a { frob 1 } top a`, "unknown statement"},
		{"bad-channel-kind", `channel c pipe 1`, "unknown kind"},
		{"undeclared-queue", `behavior a { send q 1 } top a`, "not a declared queue"},
		{"irq-non-sem", `channel q queue 1
			behavior a { delay 1 }
			top a
			irq i at 5 releases q`, "must release a declared semaphore"},
		{"dup-behavior", `behavior a { delay 1 } behavior a { delay 1 } top a`, "duplicate behavior"},
		{"compose-unknown", `behavior a { delay 1 } compose m seq { a ghost } top m`, "unknown behavior"},
		{"missing-brace", `behavior a { delay 1`, "missing }"},
		{"task-unknown", `behavior a { delay 1 } top a task ghost priority 1`, "unknown behavior"},
		{"top-unknown", `behavior a { delay 1 } top ghost`, "not declared"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestPeriodicTaskMapping(t *testing.T) {
	src := `
behavior p { delay 10us }
compose main par { p }
top main
task p priority 1 period 100us wcet 10us
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Tasks[0].Periodic || m.Tasks[0].Period != 100*sim.Microsecond {
		t.Errorf("task decl = %+v", m.Tasks[0])
	}
	mp := m.mapping()
	if mp["p"].Type != core.Periodic || mp["p"].Period != 100*sim.Microsecond {
		t.Errorf("mapping = %+v", mp["p"])
	}
}

// TestPersonalityDirective pins the `personality` directive: the figure3
// model runs under every RTOS personality and must hit the same paper
// milestones — the generic run byte-for-byte (passthrough), the native
// kernels on the same schedule since the model's queue traffic never
// contends (capacity 1, strictly alternating producer/consumer).
func TestPersonalityDirective(t *testing.T) {
	for _, pers := range []string{"", "generic", "itron", "osek"} {
		src := figure3SDL
		if pers != "" {
			src += "\npersonality " + pers + "\n"
		}
		m, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", pers, err)
		}
		if m.Personality != pers {
			t.Errorf("Personality = %q, want %q", m.Personality, pers)
		}
		arch, osm, err := m.RunArchitecture(core.PriorityPolicy{}, core.TimeModelCoarse)
		if err != nil {
			t.Fatalf("%q: %v", pers, err)
		}
		if ts := arch.MarkerTimes("ext-data"); len(ts) != 1 || ts[0] != 390 {
			t.Errorf("%q: ext-data at %v, want [390]", pers, ts)
		}
		if arch.End() != 610 {
			t.Errorf("%q: arch end = %v, want 610", pers, arch.End())
		}
		if cs := osm.StatsSnapshot().ContextSwitches; cs < 4 {
			t.Errorf("%q: context switches = %d", pers, cs)
		}
	}
}

// TestPersonalityDirectiveErrors pins rejection of unknown kinds.
func TestPersonalityDirectiveErrors(t *testing.T) {
	_, err := Parse(figure3SDL + "\npersonality vxworks\n")
	if err == nil || !strings.Contains(err.Error(), "unknown personality") {
		t.Errorf("err = %v, want unknown personality", err)
	}
}

// TestPECPUsClause pins the optional `cpus N` clause on pe declarations:
// cpus 1 parses and runs, while every unsupported combination — and in
// particular personality + cpus>1, the configuration that used to fail
// only deep inside a simulation run — is rejected at parse time with an
// actionable message.
func TestPECPUsClause(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // "" = must parse
	}{
		{"cpus-1-ok", strings.Replace(twoPEModel, "pe CPU0 sw", "pe CPU0 sw cpus 1", 1), ""},
		{"cpus-0", strings.Replace(twoPEModel, "pe CPU0 sw", "pe CPU0 sw cpus 0", 1), "must be >= 1"},
		{"cpus-not-int", strings.Replace(twoPEModel, "pe CPU0 sw", "pe CPU0 sw cpus many", 1), "expected integer"},
		{"personality-smp",
			strings.Replace(twoPEModel, "pe CPU0 sw", "pe CPU0 sw cpus 2", 1) + "\npersonality itron\n",
			`personality "itron" models a uniprocessor RTOS`},
		{"generic-smp", strings.Replace(twoPEModel, "pe CPU0 sw", "pe CPU0 sw cpus 2", 1),
			"declare one sw pe per CPU"},
		{"hw-smp", strings.Replace(twoPEModel, "pe CPU0 sw\npe CPU1 sw", "pe CPU0 sw\npe CPU1 hw cpus 2", 1),
			"hardware PE"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m, err := Parse(c.src)
			if c.want == "" {
				if err != nil {
					t.Fatalf("parse: %v", err)
				}
				if m.PEs[0].CPUs != 1 {
					t.Errorf("PEs[0].CPUs = %d, want 1", m.PEs[0].CPUs)
				}
				if _, _, err := m.RunMapped(core.PriorityPolicy{}, core.TimeModelCoarse); err != nil {
					t.Errorf("RunMapped: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want containing %q", err, c.want)
			}
		})
	}
}
