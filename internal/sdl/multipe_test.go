package sdl

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// twoPEModel: a producer on CPU0 streams values over a bus link to a
// consumer on CPU1; each side also has a local background behavior
// contending for its CPU.
const twoPEModel = `
pe CPU0 sw
pe CPU1 sw
bus sysbus arb 100ns perbyte 10ns
link data over sysbus from CPU0 to CPU1 bytes 8

behavior producer {
    repeat 4 {
        delay 500ns
        send data 7
    }
}
behavior bg0 { repeat 4 { delay 200ns } }
compose cpu0work par { producer bg0 }

behavior consumer {
    repeat 4 {
        recv data
        delay 300ns
        marker out 0
    }
}
compose cpu1work seq { consumer }

compose system par { cpu0work cpu1work }
top system

map cpu0work to CPU0
map cpu1work to CPU1

task cpu0work priority 0
task producer priority 1
task bg0 priority 2
task cpu1work priority 0
task consumer priority 1
`

func TestRunMappedTwoPEs(t *testing.T) {
	m, err := Parse(twoPEModel)
	if err != nil {
		t.Fatal(err)
	}
	if !m.MultiPE() {
		t.Fatal("model not recognized as multi-PE")
	}
	rec, oss, err := m.RunMapped(core.PriorityPolicy{}, core.TimeModelCoarse)
	if err != nil {
		t.Fatal(err)
	}
	outs := rec.MarkerTimes("out")
	if len(outs) != 4 {
		t.Fatalf("outputs = %v, want 4", outs)
	}
	// Producer: item i sent at (i+1)*500 + bg contention; link: 100+80 =
	// 180ns bus + ISR; consumer adds 300. First out ≥ 500+180+300 = 980.
	if outs[0] < 980 {
		t.Errorf("first output at %v, want ≥ 980ns", outs[0])
	}
	// Both PEs scheduled work.
	if len(oss) != 2 {
		t.Fatalf("oss = %d, want 2", len(oss))
	}
	for name, os := range oss {
		if os.StatsSnapshot().Dispatches == 0 {
			t.Errorf("PE %s never dispatched", name)
		}
	}
	// The producer and the consumer's task overlap: different CPUs. (The
	// consumer executes within its PE's main task "cpu1work" — it is a
	// seq child, so it does not become a task of its own.)
	if ov := rec.Overlap("producer", "cpu1work"); ov == 0 {
		t.Error("no producer/cpu1work overlap across PEs")
	}
	// bg0 and producer are on the same CPU: serialized.
	if ov := rec.Overlap("producer", "bg0"); ov != 0 {
		t.Errorf("producer/bg0 overlap = %v on one CPU, want 0", ov)
	}
}

func TestRunMappedHWPE(t *testing.T) {
	src := `
pe CPU sw
pe ACC hw
bus b arb 0ns perbyte 1ns
link toacc over b from CPU to ACC bytes 4
link fromacc over b from ACC to CPU bytes 4

behavior swside {
    send toacc 5
    recv fromacc
    marker done 0
}
compose cpuwork seq { swside }
behavior accel {
    recv toacc
    delay 50ns
    send fromacc 6
}
compose accwork seq { accel }
compose system par { cpuwork accwork }
top system
map cpuwork to CPU
map accwork to ACC
task cpuwork priority 0
task swside priority 1
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rec, oss, err := m.RunMapped(core.PriorityPolicy{}, core.TimeModelCoarse)
	if err != nil {
		t.Fatal(err)
	}
	if len(oss) != 1 {
		t.Fatalf("software PEs = %d, want 1", len(oss))
	}
	ts := rec.MarkerTimes("done")
	if len(ts) != 1 {
		t.Fatalf("done markers = %v", ts)
	}
	// Round trip: 4ns to ACC + 50ns compute + 4ns back + ISR deltas.
	if ts[0] < 58 || ts[0] > 200 {
		t.Errorf("done at %v, want ≈58-200ns", ts[0])
	}
}

func TestRunMappedChannelCrossPERejected(t *testing.T) {
	src := `
pe A sw
pe B sw
channel q queue 1
behavior pa { send q 1 }
compose wa seq { pa }
behavior pb { recv q }
compose wb seq { pb }
compose system par { wa wb }
top system
map wa to A
map wb to B
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.RunMapped(core.PriorityPolicy{}, core.TimeModelCoarse); err == nil ||
		!strings.Contains(err.Error(), "declare it as a link") {
		t.Errorf("cross-PE channel not rejected: %v", err)
	}
}

func TestMultiPEValidationErrors(t *testing.T) {
	base := `
behavior a { delay 1 }
compose system par { a }
top system
`
	cases := []struct{ name, src, want string }{
		{"link-no-pe", `channel x queue 1` + base + `bus b arb 0 perbyte 0`, "require pe declarations"},
		{"unknown-bus", `pe P sw` + base + `map a to P
			link l over ghost from P to P bytes 1`, "unknown bus"},
		{"self-link", `pe P sw` + base + `map a to P
			bus b arb 0 perbyte 0
			link l over b from P to P bytes 1`, "itself"},
		{"unmapped-child", `pe P sw` + base, "not mapped"},
		{"map-unknown-pe", `pe P sw` + base + `map a to Q`, "unknown pe"},
		{"dup-pe", `pe P sw
			pe P hw` + base + `map a to P`, "duplicate pe"},
		{"seq-top", `pe P sw
			behavior s { delay 1 }
			compose m seq { s }
			top m
			map s to P`, "par composition"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestRunMappedOnSinglePEModelFails(t *testing.T) {
	m, err := Parse(figure3SDL)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.RunMapped(core.PriorityPolicy{}, core.TimeModelCoarse); err == nil {
		t.Error("RunMapped accepted a model without PEs")
	}
}

// TestMappedSpeedsUpVsSinglePE: the same logical pipeline mapped onto two
// PEs finishes earlier than squeezed onto one (the EXT-MP effect, from
// the SDL frontend).
func TestMappedSpeedsUpVsSinglePE(t *testing.T) {
	single := `
channel data queue 2
behavior producer { repeat 6 { delay 100ns send data 1 } }
behavior consumer { repeat 6 { recv data delay 100ns } }
compose system par { producer consumer }
top system
task system priority 0
task producer priority 1
task consumer priority 2
`
	ms, err := Parse(single)
	if err != nil {
		t.Fatal(err)
	}
	recS, _, err := ms.RunArchitecture(core.PriorityPolicy{}, core.TimeModelCoarse)
	if err != nil {
		t.Fatal(err)
	}

	dual := `
pe A sw
pe B sw
bus b arb 0ns perbyte 0ns
link data over b from A to B bytes 1
behavior producer { repeat 6 { delay 100ns send data 1 } }
compose wa seq { producer }
behavior consumer { repeat 6 { recv data delay 100ns } }
compose wb seq { consumer }
compose system par { wa wb }
top system
map wa to A
map wb to B
task wa priority 0
task wb priority 0
task producer priority 1
task consumer priority 1
`
	md, err := Parse(dual)
	if err != nil {
		t.Fatal(err)
	}
	recD, _, err := md.RunMapped(core.PriorityPolicy{}, core.TimeModelCoarse)
	if err != nil {
		t.Fatal(err)
	}
	if !(recD.End() < recS.End()) {
		t.Errorf("two-PE end %v not earlier than single-PE end %v", recD.End(), recS.End())
	}
	var s sim.Time = recS.End()
	if s != 1200 {
		t.Errorf("single-PE end = %v, want 1200 (serialized 12×100)", s)
	}
}

// TestRunMappedPersonalities reruns the two-PE model with a personality
// directive: every software PE gets its own native kernel instance, and
// the mapped schedule must be unchanged — link traffic crosses the bus
// below the personality layer, and the per-PE local channels see no
// contended grants in this model.
func TestRunMappedPersonalities(t *testing.T) {
	ref, _, err := mustParse(t, twoPEModel).RunMapped(core.PriorityPolicy{}, core.TimeModelCoarse)
	if err != nil {
		t.Fatal(err)
	}
	for _, pers := range []string{"itron", "osek"} {
		m := mustParse(t, twoPEModel+"\npersonality "+pers+"\n")
		rec, oss, err := m.RunMapped(core.PriorityPolicy{}, core.TimeModelCoarse)
		if err != nil {
			t.Fatalf("%s: %v", pers, err)
		}
		if len(oss) != 2 {
			t.Fatalf("%s: oss = %d, want 2", pers, len(oss))
		}
		want := ref.MarkerTimes("out")
		got := rec.MarkerTimes("out")
		if len(got) != len(want) {
			t.Fatalf("%s: outputs = %v, want %v", pers, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: out[%d] at %v, want %v", pers, i, got[i], want[i])
			}
		}
	}
}

func mustParse(t *testing.T, src string) *Model {
	t.Helper()
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
