package sdl

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rtc"
	"repro/internal/sim"
)

// RTCWorkload lowers the model to a hierarchical workload for the
// run-to-completion engine (internal/rtc): the frame-compiled counterpart
// of RunArchitecture. Only single-PE models qualify — multi-PE mappings
// and bus links need the goroutine kernel's multi-instance machinery.
func (m *Model) RTCWorkload(policy string, quantum sim.Time, tm core.TimeModel, horizon sim.Time) (rtc.Workload, error) {
	if m.MultiPE() || len(m.Links) > 0 {
		return rtc.Workload{}, fmt.Errorf("sdl: the rtc engine runs single-PE models without links")
	}
	w := rtc.Workload{
		Name:        "PE",
		Policy:      policy,
		Quantum:     quantum,
		TimeModel:   tm,
		Personality: m.Personality,
		Top:         m.Top,
		Horizon:     horizon,
		Trace:       true,
	}
	for _, c := range m.Channels {
		var kind string
		switch c.Kind {
		case ChanQueue:
			kind = "queue"
		case ChanSemaphore:
			kind = "semaphore"
		case ChanHandshake:
			kind = "handshake"
		default:
			return rtc.Workload{}, fmt.Errorf("sdl: channel %q has no rtc lowering", c.Name)
		}
		w.Channels = append(w.Channels, rtc.ChannelDef{Name: c.Name, Kind: kind, Arg: c.Arg})
	}
	for _, b := range m.Behaviors {
		w.Behaviors = append(w.Behaviors, rtc.BehaviorDef{
			Name: b.Name, Kind: "leaf", Stmts: lowerStmts(b.Stmts),
		})
	}
	for _, c := range m.Composes {
		kind := "seq"
		if c.Parallel {
			kind = "par"
		}
		w.Behaviors = append(w.Behaviors, rtc.BehaviorDef{
			Name: c.Name, Kind: kind, Children: c.Children,
		})
	}
	for _, d := range m.IRQs {
		w.IRQs = append(w.IRQs, rtc.IRQDef{
			Name: d.Name, Sem: d.Releases, At: d.At, Every: d.Every, Count: d.Count,
		})
	}
	for _, t := range m.Tasks {
		td := rtc.TaskDef{Name: t.Behavior, Prio: t.Priority, Type: "aperiodic"}
		if t.Periodic {
			td.Type = "periodic"
			td.Period = t.Period
		}
		w.Tasks = append(w.Tasks, td)
	}
	return w, nil
}

func lowerStmts(stmts []Stmt) []rtc.Op {
	out := make([]rtc.Op, 0, len(stmts))
	for _, s := range stmts {
		switch s.Op {
		case OpDelay:
			out = append(out, rtc.Op{Kind: "delay", Dur: s.Dur})
		case OpSend:
			out = append(out, rtc.Op{Kind: "send", Ch: s.Channel, Value: s.Value})
		case OpRecv:
			out = append(out, rtc.Op{Kind: "recv", Ch: s.Channel})
		case OpAcquire:
			out = append(out, rtc.Op{Kind: "acquire", Ch: s.Channel})
		case OpRelease:
			out = append(out, rtc.Op{Kind: "release", Ch: s.Channel})
		case OpSignal:
			out = append(out, rtc.Op{Kind: "signal", Ch: s.Channel})
		case OpWaitSig:
			out = append(out, rtc.Op{Kind: "waitsig", Ch: s.Channel})
		case OpMarker:
			out = append(out, rtc.Op{Kind: "marker", Label: s.Label, Value: s.Value})
		case OpRepeat:
			out = append(out, rtc.Op{Kind: "repeat", Count: s.Count, Body: lowerStmts(s.Body)})
		}
	}
	return out
}

// RunArchitectureRTC runs the architecture model on the run-to-completion
// engine — the -engine=rtc counterpart of RunArchitecture. The horizon
// bounds the run (the goroutine model runs to quiescence; pass a horizon
// beyond the model's natural end for identical results).
func (m *Model) RunArchitectureRTC(policy string, quantum sim.Time, tm core.TimeModel, horizon sim.Time) (*rtc.Result, error) {
	w, err := m.RTCWorkload(policy, quantum, tm, horizon)
	if err != nil {
		return nil, err
	}
	res := rtc.Run(w)
	if res.Err != nil {
		return res, res.Err
	}
	return res, nil
}
