// Package workload generates synthetic task sets for the scheduling
// experiments (DESIGN.md experiment SCHED): periodic sets with controlled
// total utilization (UUniFast) and deterministic pseudo-random parameters,
// plus a harness that simulates a set on the RTOS model and collects
// deadline statistics.
package workload

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// RNG is a small deterministic SplitMix64 generator, so experiments are
// reproducible across runs and platforms.
type RNG struct{ state uint64 }

// NewRNG seeds a generator.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next raw value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0,n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("workload: Intn(%d)", n))
	}
	return int(r.Uint64() % uint64(n))
}

// TaskSpec describes one periodic task of a generated set.
type TaskSpec struct {
	Name   string
	Period sim.Time
	WCET   sim.Time
	Prio   int
}

// standard period menu: 10 ms .. 1 s, log-ish spaced.
var periodMenu = []sim.Time{
	10 * sim.Millisecond, 20 * sim.Millisecond, 50 * sim.Millisecond,
	100 * sim.Millisecond, 200 * sim.Millisecond, 500 * sim.Millisecond,
	1000 * sim.Millisecond,
}

// UUniFast distributes a total utilization over n tasks (Bini & Buttazzo).
func UUniFast(rng *RNG, n int, total float64) []float64 {
	u := make([]float64, n)
	sum := total
	for i := 0; i < n-1; i++ {
		next := sum * math.Pow(rng.Float64(), 1/float64(n-i-1))
		u[i] = sum - next
		sum = next
	}
	u[n-1] = sum
	return u
}

// PeriodicSet generates n periodic tasks with total utilization util.
// Priorities are assigned rate-monotonically by index after sorting is NOT
// performed — callers using RM should rely on core's RMPolicy assignment.
func PeriodicSet(rng *RNG, n int, util float64) []TaskSpec {
	if n < 1 {
		panic("workload: PeriodicSet with n < 1")
	}
	utils := UUniFast(rng, n, util)
	specs := make([]TaskSpec, n)
	for i := 0; i < n; i++ {
		period := periodMenu[rng.Intn(len(periodMenu))]
		wcet := sim.Time(float64(period) * utils[i])
		if wcet < sim.Time(1) {
			wcet = 1
		}
		if wcet >= period {
			wcet = period - 1
		}
		specs[i] = TaskSpec{
			Name:   fmt.Sprintf("t%d", i),
			Period: period,
			WCET:   wcet,
			Prio:   i,
		}
	}
	return specs
}

// Utilization returns the set's total utilization.
func Utilization(specs []TaskSpec) float64 {
	u := 0.0
	for _, s := range specs {
		u += float64(s.WCET) / float64(s.Period)
	}
	return u
}

// Result aggregates one simulation of a task set.
type Result struct {
	Policy          string
	Utilization     float64
	Horizon         sim.Time
	Activations     int
	Missed          int
	ContextSwitches uint64
	Preemptions     uint64
	IdleTime        sim.Time
}

// MissRatio returns missed/activations (0 for an idle run).
func (r Result) MissRatio() float64 {
	if r.Activations == 0 {
		return 0
	}
	return float64(r.Missed) / float64(r.Activations)
}

// Run simulates the task set on the RTOS model under the given policy and
// time model until the horizon and returns deadline statistics. Tasks
// release synchronously at t=0 (the critical instant). An optional
// telemetry bus is attached to the RTOS instance.
func Run(specs []TaskSpec, policy core.Policy, tm core.TimeModel, horizon sim.Time, bus ...*telemetry.Bus) (Result, error) {
	k := sim.NewKernel()
	defer k.Shutdown()
	os := core.New(k, "PE", policy, core.WithTimeModel(tm))
	for _, b := range bus {
		b.Attach(os)
	}
	tasks := make([]*core.Task, len(specs))
	for i, s := range specs {
		s := s
		tasks[i] = os.TaskCreate(s.Name, core.Periodic, s.Period, s.WCET, s.Prio)
		task := tasks[i]
		proc := k.Spawn(s.Name, func(p *sim.Proc) {
			os.TaskActivate(p, task)
			for {
				os.TimeWait(p, s.WCET)
				os.TaskEndCycle(p)
			}
		})
		proc.SetDaemon(true)
	}
	os.Start(nil)
	if err := k.RunUntil(horizon); err != nil {
		return Result{}, err
	}
	res := Result{
		Policy:      policy.Name(),
		Utilization: Utilization(specs),
		Horizon:     horizon,
	}
	for _, t := range tasks {
		res.Activations += t.Activations()
		res.Missed += t.MissedDeadlines()
	}
	st := os.StatsSnapshot()
	res.ContextSwitches = st.ContextSwitches
	res.Preemptions = st.Preemptions
	res.IdleTime = st.IdleTime
	return res, nil
}
