package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/sim"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGFloatRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestUUniFastSumsToTotal(t *testing.T) {
	f := func(seed uint64, n uint8, util uint8) bool {
		nn := int(n%16) + 1
		u := 0.1 + float64(util%80)/100
		parts := UUniFast(NewRNG(seed), nn, u)
		if len(parts) != nn {
			return false
		}
		sum := 0.0
		for _, p := range parts {
			if p < -1e-9 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-u) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPeriodicSetProperties(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		nn := int(n%10) + 2
		specs := PeriodicSet(NewRNG(seed), nn, 0.7)
		if len(specs) != nn {
			return false
		}
		for _, s := range specs {
			if s.WCET < 1 || s.WCET >= s.Period {
				return false
			}
		}
		// Total utilization near the target (clamping can shave a little).
		u := Utilization(specs)
		return u > 0.2 && u < 0.75
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRunFeasibleSetNoMisses(t *testing.T) {
	specs := PeriodicSet(NewRNG(1), 4, 0.5)
	res, err := Run(specs, core.EDFPolicy{}, core.TimeModelSegmented, 2*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Activations == 0 {
		t.Fatal("no activations")
	}
	if res.Missed != 0 {
		t.Errorf("missed = %d on U=%.2f set under EDF, want 0", res.Missed, res.Utilization)
	}
	if res.IdleTime == 0 {
		t.Error("no idle time on a half-utilized processor")
	}
}

func TestRunOverloadedSetMisses(t *testing.T) {
	// U > 1: misses are inevitable under any policy.
	specs := []TaskSpec{
		{Name: "a", Period: 100, WCET: 70, Prio: 0},
		{Name: "b", Period: 100, WCET: 70, Prio: 1},
	}
	res, err := Run(specs, core.EDFPolicy{}, core.TimeModelSegmented, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Missed == 0 {
		t.Error("overloaded set reported no misses")
	}
	if res.MissRatio() <= 0 {
		t.Errorf("miss ratio = %v, want > 0", res.MissRatio())
	}
}

func TestRunPolicyComparison(t *testing.T) {
	// On a harmonic high-utilization set, EDF (optimal) must not miss
	// more than FCFS (non-preemptive, prone to priority inversion).
	specs := []TaskSpec{
		{Name: "fast", Period: 100, WCET: 40, Prio: 0},
		{Name: "slow", Period: 400, WCET: 200, Prio: 1},
	}
	edf, err := Run(specs, core.EDFPolicy{}, core.TimeModelSegmented, 10000)
	if err != nil {
		t.Fatal(err)
	}
	fcfs, err := Run(specs, core.FCFSPolicy{}, core.TimeModelSegmented, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if edf.Missed > fcfs.Missed {
		t.Errorf("EDF missed %d > FCFS %d on a feasible set", edf.Missed, fcfs.Missed)
	}
	if edf.Missed != 0 {
		t.Errorf("EDF missed %d on U=0.9 harmonic set, want 0", edf.Missed)
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}
