package dse

import (
	"testing"

	"repro/internal/taskset"
)

// TestKeyCollisionRegression pins the fix for the Config.Key collision
// bug: values were joined with unescaped "=" and " ", so a value
// containing the separators could forge another configuration's key.
func TestKeyCollisionRegression(t *testing.T) {
	pairs := []struct {
		name string
		a, b Config
	}{
		{"space-equals-in-value", Config{"a": "1 b=2"}, Config{"a": "1", "b": "2"}},
		{"equals-in-name-vs-value", Config{"a=b": "c"}, Config{"a": "b=c"}},
		{"escape-is-not-the-char", Config{"a": "%3D"}, Config{"a": "="}},
		{"trailing-space", Config{"a": "1 ", "b": "2"}, Config{"a": "1", "b": " 2"}},
	}
	for _, p := range pairs {
		t.Run(p.name, func(t *testing.T) {
			if ka, kb := p.a.Key(), p.b.Key(); ka == kb {
				t.Errorf("distinct configs collide: %v and %v both key as %q", p.a, p.b, ka)
			}
		})
	}
}

// TestKeyPlainValuesUnescaped: ordinary axes keep the readable form used
// in tables and logs.
func TestKeyPlainValuesUnescaped(t *testing.T) {
	if got := (Config{"b": "y", "a": "2"}).Key(); got != "a=2 b=y" {
		t.Errorf("Key() = %q, want %q", got, "a=2 b=y")
	}
}

func baseSet() *taskset.Set {
	return &taskset.Set{
		Tasks: []taskset.Task{
			{Name: "ctrl", Prio: 1, PeriodUs: 5000, WcetUs: 1200},
			{Name: "dsp", Prio: 2, PeriodUs: 10000, ComputeUs: []int64{800, 400}},
			{Name: "io", Type: "aperiodic", Prio: 3, StartUs: 2500, WcetUs: 300, Cycles: 4},
		},
	}
}

// TestCanonicalNormalizesDefaults: a set written with every default
// omitted and the same set with every default explicit are the same
// configuration and must hash equal.
func TestCanonicalNormalizesDefaults(t *testing.T) {
	implicit := baseSet()
	explicit := baseSet()
	explicit.Policy = "priority"
	explicit.TimeModel = "coarse"
	explicit.Personality = "generic"
	explicit.Engine = "goroutine"
	explicit.CPUs = 1
	explicit.HorizonMs = 1000
	explicit.Tasks[0].Type = "periodic"
	if HashSet(implicit) != HashSet(explicit) {
		t.Errorf("explicit defaults hash differently from omitted defaults:\n%s\nvs\n%s",
			Canonical(implicit), Canonical(explicit))
	}
}

// TestCanonicalIgnoresInertQuantum: the quantum only matters under "rr";
// under any other policy it is simulation-inert and must not split the
// cache.
func TestCanonicalIgnoresInertQuantum(t *testing.T) {
	a, b := baseSet(), baseSet()
	b.QuantumUs = 500
	if HashSet(a) != HashSet(b) {
		t.Errorf("quantum changed the hash under the priority policy")
	}
	a.Policy, b.Policy = "rr", "rr"
	a.QuantumUs = 250
	if HashSet(a) == HashSet(b) {
		t.Errorf("quantum did not change the hash under rr")
	}
}

// TestCanonicalPerturbations: every semantically meaningful change to
// the set must change the hash — a miss here is a cache collision
// between configurations that simulate differently.
func TestCanonicalPerturbations(t *testing.T) {
	perturbations := []struct {
		name   string
		mutate func(*taskset.Set)
	}{
		{"policy", func(s *taskset.Set) { s.Policy = "edf" }},
		{"rr-quantum", func(s *taskset.Set) { s.Policy = "rr"; s.QuantumUs = 500 }},
		{"time-model", func(s *taskset.Set) { s.TimeModel = "segmented" }},
		{"personality", func(s *taskset.Set) { s.Personality = "itron" }},
		{"cpus", func(s *taskset.Set) { s.CPUs = 2 }},
		{"engine", func(s *taskset.Set) { s.Engine = "rtc" }},
		{"horizon", func(s *taskset.Set) { s.HorizonMs = 500 }},
		{"task-added", func(s *taskset.Set) {
			s.Tasks = append(s.Tasks, taskset.Task{Name: "bg", Prio: 9, PeriodUs: 50000, WcetUs: 10})
		}},
		{"task-dropped", func(s *taskset.Set) { s.Tasks = s.Tasks[:2] }},
		{"task-renamed", func(s *taskset.Set) { s.Tasks[0].Name = "ctrl2" }},
		{"task-type", func(s *taskset.Set) { s.Tasks[0].Type = "aperiodic" }},
		{"task-prio", func(s *taskset.Set) { s.Tasks[0].Prio = 7 }},
		{"task-period", func(s *taskset.Set) { s.Tasks[0].PeriodUs = 6000 }},
		{"task-wcet", func(s *taskset.Set) { s.Tasks[0].WcetUs = 1300 }},
		{"task-start", func(s *taskset.Set) { s.Tasks[2].StartUs = 3000 }},
		{"task-cycles", func(s *taskset.Set) { s.Tasks[2].Cycles = 5 }},
		{"task-segment-value", func(s *taskset.Set) { s.Tasks[1].ComputeUs[1] = 500 }},
		{"task-segment-split", func(s *taskset.Set) { s.Tasks[1].ComputeUs = []int64{600, 600} }},
	}
	base := HashSet(baseSet())
	seen := map[string]string{base: "base"}
	for _, p := range perturbations {
		t.Run(p.name, func(t *testing.T) {
			s := baseSet()
			p.mutate(s)
			h := HashSet(s)
			if prev, dup := seen[h]; dup {
				t.Errorf("perturbation %q hashes identically to %q", p.name, prev)
			}
			seen[h] = p.name
		})
	}
}

// TestHashSetGolden pins the canonical serialization format: if this
// hash moves, Canonical's byte format changed and canonVersion must be
// bumped so persisted cache entries from the old format cannot be
// misattributed.
func TestHashSetGolden(t *testing.T) {
	const want = "4963fa9f9b2f4ef22c741a3776a5f9c076845ce8f3758cd3257ea9e8ff952ae3"
	if got := HashSet(baseSet()); got != want {
		t.Errorf("canonical format drifted:\n got %s\nwant %s\nserialization:\n%s", got, want, Canonical(baseSet()))
	}
}
