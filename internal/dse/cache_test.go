package dse

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"testing"
)

// serializePoints renders an exploration result into comparable bytes:
// every field that Explore promises, with aux metrics in sorted order.
func serializePoints(points []Point) []byte {
	var b bytes.Buffer
	for i, p := range points {
		fmt.Fprintf(&b, "%d key=%q cost=%v front=%d err=%v aux={", i, p.Config.Key(), p.Cost, p.Front, p.Err)
		names := make([]string, 0, len(p.Aux))
		for name := range p.Aux {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&b, " %s=%v", name, p.Aux[name])
		}
		fmt.Fprintf(&b, " }\n")
	}
	return b.Bytes()
}

func memoAxes() []Axis {
	return []Axis{
		{Name: "policy", Values: []string{"priority", "rr", "edf", "fifo"}},
		{Name: "load", Values: []string{"1", "2", "3"}},
	}
}

func memoEval(calls *atomic.Int64) EvalFunc {
	return func(c Config) (float64, map[string]float64, error) {
		calls.Add(1)
		var load float64
		fmt.Sscanf(c["load"], "%f", &load)
		cost := load * float64(len(c["policy"]))
		return cost, map[string]float64{"switches": 10 - load}, nil
	}
}

// TestExploreMemoization is the memoization-accounting gate: the first
// sweep misses every cell, an identical repeat is answered 100% from the
// cache without a single evaluation, and the warm points are
// byte-identical to the cold run — sequentially and on 8 workers (the
// -race build makes the concurrent case a data-race check too).
func TestExploreMemoization(t *testing.T) {
	for _, jobs := range []int{1, 8} {
		t.Run(fmt.Sprintf("jobs-%d", jobs), func(t *testing.T) {
			cache, err := NewCache("")
			if err != nil {
				t.Fatal(err)
			}
			var calls atomic.Int64
			axes := memoAxes()
			eval := memoEval(&calls)

			cold := Explore(axes, eval, WithJobs(jobs), WithCache(cache, nil), WithObjectives("cost", "switches"))
			n := int64(len(Grid(axes)))
			if calls.Load() != n {
				t.Fatalf("cold sweep: %d evaluations, want %d", calls.Load(), n)
			}
			if s := cache.Stats(); s.Hits != 0 || s.Misses != int(n) {
				t.Fatalf("cold sweep stats = %+v, want 0 hits / %d misses", s, n)
			}

			warm := Explore(axes, eval, WithJobs(jobs), WithCache(cache, nil), WithObjectives("cost", "switches"))
			if calls.Load() != n {
				t.Errorf("warm sweep re-evaluated: %d total calls, want %d", calls.Load(), n)
			}
			s := cache.Stats()
			if s.Hits != int(n) || s.Misses != int(n) {
				t.Errorf("warm sweep stats = %+v, want %d hits / %d misses", s, n, n)
			}
			if got := s.HitRate(); got != 0.5 {
				t.Errorf("cumulative hit rate = %v, want 0.5 (cold misses + warm hits)", got)
			}
			coldBytes, warmBytes := serializePoints(cold), serializePoints(warm)
			if !bytes.Equal(coldBytes, warmBytes) {
				t.Errorf("warm points differ from cold run:\ncold:\n%swarm:\n%s", coldBytes, warmBytes)
			}
		})
	}
}

// TestCachePersistsAcrossInstances: a second Cache opened on the same
// directory answers the whole sweep from disk.
func TestCachePersistsAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	axes := memoAxes()

	c1, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	cold := Explore(axes, memoEval(&calls), WithJobs(1), WithCache(c1, nil))
	if err := c1.Err(); err != nil {
		t.Fatalf("persist error: %v", err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(Grid(axes)) {
		t.Fatalf("%d cache files on disk, want %d", len(files), len(Grid(axes)))
	}

	c2, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := Explore(axes, memoEval(&calls), WithJobs(1), WithCache(c2, nil))
	if got, want := calls.Load(), int64(len(Grid(axes))); got != want {
		t.Errorf("disk-warm sweep evaluated %d times total, want %d (cold only)", got, want)
	}
	if s := c2.Stats(); s.Misses != 0 || s.HitRate() != 1.0 {
		t.Errorf("disk-warm stats = %+v, want 100%% hits", s)
	}
	if !bytes.Equal(serializePoints(cold), serializePoints(warm)) {
		t.Errorf("disk-warm points differ from cold run")
	}
}

// TestCacheSkipsFailedEvaluations: errors are never memoized, so a
// transient failure retries on the next sweep.
func TestCacheSkipsFailedEvaluations(t *testing.T) {
	cache, err := NewCache("")
	if err != nil {
		t.Fatal(err)
	}
	axes := []Axis{{Name: "n", Values: []string{"ok", "bad"}}}
	var calls atomic.Int64
	eval := func(c Config) (float64, map[string]float64, error) {
		calls.Add(1)
		if c["n"] == "bad" {
			return 0, nil, fmt.Errorf("transient")
		}
		return 1, nil, nil
	}
	Explore(axes, eval, WithJobs(1), WithCache(cache, nil))
	Explore(axes, eval, WithJobs(1), WithCache(cache, nil))
	if calls.Load() != 3 {
		t.Errorf("%d evaluations, want 3 (ok once, bad twice)", calls.Load())
	}
	if s := cache.Stats(); s.Hits != 1 || s.Misses != 3 {
		t.Errorf("stats = %+v, want 1 hit / 3 misses", s)
	}
}

// TestCacheCorruptEntryFallsBack: an unreadable disk entry degrades to a
// miss and is re-evaluated, not an error.
func TestCacheCorruptEntryFallsBack(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	c.store("k", cacheEntry{Cost: 7})
	if err := os.WriteFile(c.path("k"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.lookup("k"); ok {
		t.Errorf("corrupt entry served as a hit")
	}
	if s := c2.Stats(); s.Misses != 1 {
		t.Errorf("stats = %+v, want the corrupt read counted as a miss", s)
	}
}

// TestCacheBytesRoundTrip: opaque payloads stored with PutBytes come back
// byte-identical from memory and, via a fresh Cache, from disk — the
// shared result store the campaign server leans on for crash-resumed
// cells.
func TestCacheBytesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("result bytes\x00with binary\xff")
	if _, ok := c.GetBytes("cell"); ok {
		t.Fatal("empty cache served a hit")
	}
	c.PutBytes("cell", payload)
	got, ok := c.GetBytes("cell")
	if !ok || string(got) != string(payload) {
		t.Fatalf("memory read = %q ok=%v, want original payload", got, ok)
	}
	c2, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok = c2.GetBytes("cell")
	if !ok || string(got) != string(payload) {
		t.Fatalf("disk read = %q ok=%v, want original payload", got, ok)
	}
	if s := c2.Stats(); s.Hits != 1 || s.Misses != 0 {
		t.Errorf("stats = %+v, want 1 hit / 0 misses", s)
	}
}

// TestCacheBytesMemoryOnly: a dir-less cache serves bytes from memory and
// persists nothing.
func TestCacheBytesMemoryOnly(t *testing.T) {
	c, err := NewCache("")
	if err != nil {
		t.Fatal(err)
	}
	c.PutBytes("k", []byte("v"))
	if b, ok := c.GetBytes("k"); !ok || string(b) != "v" {
		t.Fatalf("GetBytes = %q ok=%v", b, ok)
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 0 {
		t.Errorf("stats = %+v, want 1 hit", s)
	}
}

// TestCacheBytesCorruptEntryIsAMiss: a truncated or bit-flipped persisted
// payload fails its checksum and degrades to a miss — wrong bytes are
// never served.
func TestCacheBytesCorruptEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	c.PutBytes("k", []byte("the payload"))
	data, err := os.ReadFile(c.binPath("k"))
	if err != nil {
		t.Fatal(err)
	}
	for name, corrupt := range map[string][]byte{
		"truncated": data[:len(data)-3],
		"bitflip":   append(append([]byte(nil), data[:len(data)-1]...), data[len(data)-1]^0x40),
		"garbage":   []byte("not a cache entry"),
	} {
		if err := os.WriteFile(c.binPath("k"), corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		c2, err := NewCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		if b, ok := c2.GetBytes("k"); ok {
			t.Errorf("%s: corrupt entry served as a hit (%q)", name, b)
		}
		if s := c2.Stats(); s.Misses != 1 {
			t.Errorf("%s: stats = %+v, want the corrupt read counted as a miss", name, s)
		}
	}
}

// TestCacheBytesCallerMutationSafe: mutating the slice passed to PutBytes
// after the call does not corrupt the stored entry.
func TestCacheBytesCallerMutationSafe(t *testing.T) {
	c, err := NewCache("")
	if err != nil {
		t.Fatal(err)
	}
	buf := []byte("original")
	c.PutBytes("k", buf)
	copy(buf, "mutated!")
	if b, _ := c.GetBytes("k"); string(b) != "original" {
		t.Fatalf("stored entry mutated: %q", b)
	}
}
