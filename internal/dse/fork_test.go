package dse

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/rtc"
	"repro/internal/sim"
)

func forkBase() rtc.Workload {
	return rtc.Workload{
		Name:   "fork-pe",
		Policy: "priority",
		Tasks: []rtc.TaskDef{
			{Name: "hi", Type: "periodic", Prio: 1, Period: 5 * sim.Millisecond, Cycles: 8, Segments: []sim.Time{1200 * sim.Microsecond}},
			{Name: "mid", Type: "periodic", Prio: 2, Period: 8 * sim.Millisecond, Cycles: 5, Segments: []sim.Time{900 * sim.Microsecond, 600 * sim.Microsecond}},
			{Name: "lo", Type: "periodic", Prio: 3, Period: 13 * sim.Millisecond, Cycles: 3, Segments: []sim.Time{2 * sim.Millisecond}},
		},
		Horizon: 50 * sim.Millisecond,
		Trace:   true,
	}
}

func serializeRTC(r *rtc.Result) []byte {
	var b bytes.Buffer
	for _, rec := range r.Records {
		fmt.Fprintf(&b, "%s\n", rec.String())
	}
	fmt.Fprintf(&b, "stats %+v end %v pers %s\n", r.Stats, r.End, r.Personality)
	fmt.Fprintf(&b, "err %v diag %v cons %v\n", r.Err, r.Diag, r.Conservation)
	for _, tr := range r.Tasks {
		fmt.Fprintf(&b, "task %+v\n", tr)
	}
	return b.Bytes()
}

// TestForkSweepSamePolicyEquivalence: forking without changing any knob
// must reproduce the uninterrupted run byte for byte — the checkpoint
// adds nothing and loses nothing.
func TestForkSweepSamePolicyEquivalence(t *testing.T) {
	base := forkBase()
	want := serializeRTC(rtc.Run(base))
	results, err := ForkSweep(base, 17*sim.Millisecond, []Variant{{Name: "same", Policy: base.Policy}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
	got := serializeRTC(results[0].Result)
	if !bytes.Equal(got, want) {
		t.Errorf("same-policy fork diverges from uninterrupted run:\nfork:\n%s\nuninterrupted:\n%s", got, want)
	}
}

// TestForkSweepVariants: every variant completes from the shared
// checkpoint, the policy switch actually takes effect, and the sweep is
// deterministic across jobs counts.
func TestForkSweepVariants(t *testing.T) {
	base := forkBase()
	variants := []Variant{
		{Name: "priority", Policy: "priority"},
		{Name: "fifo", Policy: "fifo"},
		{Name: "rr", Policy: "rr", Quantum: 500 * sim.Microsecond},
		{Name: "edf", Policy: "edf"},
	}
	seq, err := ForkSweep(base, 17*sim.Millisecond, variants, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ForkSweep(base, 17*sim.Millisecond, variants, 4)
	if err != nil {
		t.Fatal(err)
	}
	serialized := map[string][]byte{}
	for i, r := range seq {
		if r.Err != nil {
			t.Fatalf("variant %s: %v", r.Variant.Name, r.Err)
		}
		if r.Result.Err != nil || r.Result.Conservation != nil {
			t.Fatalf("variant %s: err=%v conservation=%v", r.Variant.Name, r.Result.Err, r.Result.Conservation)
		}
		if r.Result.End < 17*sim.Millisecond {
			t.Errorf("variant %s ended at %v, before the fork point", r.Variant.Name, r.Result.End)
		}
		serialized[r.Variant.Name] = serializeRTC(r.Result)
		if !bytes.Equal(serialized[r.Variant.Name], serializeRTC(par[i].Result)) {
			t.Errorf("variant %s: parallel sweep diverges from sequential", r.Variant.Name)
		}
	}
	if bytes.Equal(serialized["priority"], serialized["fifo"]) && bytes.Equal(serialized["priority"], serialized["rr"]) {
		t.Errorf("policy fork had no observable effect on any variant")
	}
}

// TestForkSweepPrefixFailure: a workload whose prefix cannot even start
// reports the error instead of forking garbage.
func TestForkSweepPrefixFailure(t *testing.T) {
	base := forkBase()
	base.Policy = "no-such-policy"
	if _, err := ForkSweep(base, sim.Millisecond, []Variant{{Name: "x", Policy: "priority"}}, 1); err == nil {
		t.Errorf("invalid workload forked without error")
	}
}
