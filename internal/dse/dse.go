// Package dse is a small design-space-exploration driver over the
// system-level models — the activity the paper's abstract RTOS model
// exists to accelerate ("early and rapid design space exploration"). A
// design space is a grid of named axes; every configuration is evaluated
// by a user function returning a cost metric (and optional auxiliary
// metrics), and the results come back ranked.
package dse

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/runner"
)

// Config is one point of the design space: a value per axis.
type Config map[string]string

// Key returns a canonical, order-independent string form.
func (c Config) Key() string {
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+c[k])
	}
	return strings.Join(parts, " ")
}

// Axis is one dimension of the space.
type Axis struct {
	Name   string
	Values []string
}

// Grid enumerates the cartesian product of the axes, first axis slowest.
func Grid(axes []Axis) []Config {
	if len(axes) == 0 {
		return []Config{{}}
	}
	rest := Grid(axes[1:])
	var out []Config
	for _, v := range axes[0].Values {
		for _, r := range rest {
			c := Config{axes[0].Name: v}
			for k, rv := range r {
				c[k] = rv
			}
			out = append(out, c)
		}
	}
	return out
}

// Point is an evaluated configuration.
type Point struct {
	Config Config
	Cost   float64
	Aux    map[string]float64
	Err    error
}

// EvalFunc evaluates one configuration: lower cost is better.
type EvalFunc func(c Config) (cost float64, aux map[string]float64, err error)

// Option configures an exploration.
type Option func(*exploreOptions)

type exploreOptions struct {
	jobs int
}

// WithJobs sets the number of configurations evaluated concurrently
// (default runtime.NumCPU(); 1 = sequential). Each evaluation must build
// its own simulation kernel, which every model-running EvalFunc in this
// repository does.
func WithJobs(n int) Option { return func(o *exploreOptions) { o.jobs = n } }

// Explore evaluates every configuration of the grid and returns the
// points sorted by ascending cost; failed evaluations sort last and carry
// their error. Evaluations run concurrently on a bounded worker pool
// (see WithJobs); results are collected in grid order before the stable
// sort, so the ranking is deterministic and identical to a sequential
// exploration. A panicking evaluation becomes that point's Err instead of
// aborting the sweep.
func Explore(axes []Axis, eval EvalFunc, opts ...Option) []Point {
	o := exploreOptions{}
	for _, opt := range opts {
		opt(&o)
	}
	configs := Grid(axes)
	type out struct {
		cost float64
		aux  map[string]float64
	}
	results := runner.Map(len(configs), runner.Options{Jobs: o.jobs}, func(i int) (out, error) {
		cost, aux, err := eval(configs[i])
		return out{cost: cost, aux: aux}, err
	})
	points := make([]Point, 0, len(configs))
	for i, c := range configs {
		r := results[i]
		points = append(points, Point{Config: c, Cost: r.Value.cost, Aux: r.Value.aux, Err: r.Err})
	}
	sort.SliceStable(points, func(i, j int) bool {
		if (points[i].Err == nil) != (points[j].Err == nil) {
			return points[i].Err == nil
		}
		return points[i].Cost < points[j].Cost
	})
	return points
}

// Best returns the lowest-cost successful point.
func Best(points []Point) (Point, error) {
	for _, p := range points {
		if p.Err == nil {
			return p, nil
		}
	}
	return Point{}, fmt.Errorf("dse: no configuration evaluated successfully")
}

// Table renders the ranked points, one line each, with the cost metric
// named unit.
func Table(points []Point, unit string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%4s  %-44s %14s\n", "rank", "configuration", unit)
	for i, p := range points {
		if p.Err != nil {
			fmt.Fprintf(&b, "%4d  %-44s %14s (%v)\n", i+1, p.Config.Key(), "error", p.Err)
			continue
		}
		fmt.Fprintf(&b, "%4d  %-44s %14.3f\n", i+1, p.Config.Key(), p.Cost)
	}
	return b.String()
}
