// Package dse is a small design-space-exploration driver over the
// system-level models — the activity the paper's abstract RTOS model
// exists to accelerate ("early and rapid design space exploration"). A
// design space is a grid of named axes; every configuration is evaluated
// by a user function returning a cost metric (and optional auxiliary
// metrics), and the results come back ranked.
package dse

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/runner"
)

// Config is one point of the design space: a value per axis.
type Config map[string]string

// Key returns a canonical, order-independent string form. Axis names
// and values are escaped so the "=" and " " separators cannot be forged
// from inside a value: {"a": "1 b=2"} and {"a": "1", "b": "2"} key
// differently. Plain alphanumeric axes render unescaped, so keys stay
// readable in tables and logs.
func (c Config) Key() string {
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, escapeKeyPart(k)+"="+escapeKeyPart(c[k]))
	}
	return strings.Join(parts, " ")
}

// escapeKeyPart percent-escapes the characters that carry structure in a
// Key ("=", " ", "%") plus control characters; everything else passes
// through untouched.
func escapeKeyPart(s string) string {
	clean := true
	for i := 0; i < len(s); i++ {
		if keyEscapeNeeded(s[i]) {
			clean = false
			break
		}
	}
	if clean {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 6)
	for i := 0; i < len(s); i++ {
		if keyEscapeNeeded(s[i]) {
			fmt.Fprintf(&b, "%%%02X", s[i])
		} else {
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

func keyEscapeNeeded(c byte) bool {
	return c == '%' || c == '=' || c == ' ' || c < 0x20 || c == 0x7f
}

// Axis is one dimension of the space.
type Axis struct {
	Name   string
	Values []string
}

// Grid enumerates the cartesian product of the axes, first axis slowest.
func Grid(axes []Axis) []Config {
	if len(axes) == 0 {
		return []Config{{}}
	}
	rest := Grid(axes[1:])
	var out []Config
	for _, v := range axes[0].Values {
		for _, r := range rest {
			c := Config{axes[0].Name: v}
			for k, rv := range r {
				c[k] = rv
			}
			out = append(out, c)
		}
	}
	return out
}

// Point is an evaluated configuration.
type Point struct {
	Config Config
	Cost   float64
	Aux    map[string]float64
	Err    error

	// Front is the point's Pareto front rank (1 = non-dominated) when the
	// exploration ran with WithObjectives; 0 otherwise (scalar ranking, or
	// a failed evaluation).
	Front int
}

// EvalFunc evaluates one configuration: lower cost is better.
type EvalFunc func(c Config) (cost float64, aux map[string]float64, err error)

// Option configures an exploration.
type Option func(*exploreOptions)

type exploreOptions struct {
	jobs       int
	objectives []string
	cache      *Cache
	keyFn      func(Config) string
}

// WithJobs sets the number of configurations evaluated concurrently
// (default runtime.NumCPU(); 1 = sequential). Each evaluation must build
// its own simulation kernel, which every model-running EvalFunc in this
// repository does.
func WithJobs(n int) Option { return func(o *exploreOptions) { o.jobs = n } }

// WithObjectives switches the ranking from scalar cost to Pareto
// dominance over the named metrics, all minimized: "cost" names the
// primary Cost, anything else an Aux metric (a point missing the metric
// counts as +Inf — dominated by every point that has it). Points come
// back grouped by front (Point.Front, 1 = non-dominated) and ordered by
// cost within a front; a single objective reduces to the scalar ranking.
func WithObjectives(metrics ...string) Option {
	return func(o *exploreOptions) { o.objectives = metrics }
}

// WithCache memoizes successful evaluations in the cache under
// keyFn(config) (nil keyFn = Config.Key). Re-running an identical sweep
// — same axes, same key function — evaluates nothing and reports 100%
// hits in the cache's Stats. Failed evaluations are not cached, so
// transient errors retry on the next sweep.
func WithCache(cache *Cache, keyFn func(Config) string) Option {
	return func(o *exploreOptions) {
		o.cache = cache
		o.keyFn = keyFn
	}
}

// Explore evaluates every configuration of the grid and returns the
// points sorted by ascending cost; failed evaluations sort last and carry
// their error. Evaluations run concurrently on a bounded worker pool
// (see WithJobs); results are collected in grid order before the stable
// sort, so the ranking is deterministic and identical to a sequential
// exploration. A panicking evaluation becomes that point's Err instead of
// aborting the sweep.
func Explore(axes []Axis, eval EvalFunc, opts ...Option) []Point {
	o := exploreOptions{}
	for _, opt := range opts {
		opt(&o)
	}
	configs := Grid(axes)
	if o.cache != nil {
		inner := eval
		keyFn := o.keyFn
		if keyFn == nil {
			keyFn = Config.Key
		}
		eval = func(c Config) (float64, map[string]float64, error) {
			key := keyFn(c)
			if e, ok := o.cache.lookup(key); ok {
				return e.Cost, e.Aux, nil
			}
			cost, aux, err := inner(c)
			if err == nil {
				o.cache.store(key, cacheEntry{Cost: cost, Aux: aux})
			}
			return cost, aux, err
		}
	}
	type out struct {
		cost float64
		aux  map[string]float64
	}
	results := runner.Map(len(configs), runner.Options{Jobs: o.jobs}, func(i int) (out, error) {
		cost, aux, err := eval(configs[i])
		return out{cost: cost, aux: aux}, err
	})
	points := make([]Point, 0, len(configs))
	for i, c := range configs {
		r := results[i]
		points = append(points, Point{Config: c, Cost: r.Value.cost, Aux: r.Value.aux, Err: r.Err})
	}
	if len(o.objectives) > 0 {
		assignFronts(points, o.objectives)
		sort.SliceStable(points, func(i, j int) bool {
			if (points[i].Err == nil) != (points[j].Err == nil) {
				return points[i].Err == nil
			}
			if points[i].Front != points[j].Front {
				return points[i].Front < points[j].Front
			}
			return points[i].Cost < points[j].Cost
		})
		return points
	}
	sort.SliceStable(points, func(i, j int) bool {
		if (points[i].Err == nil) != (points[j].Err == nil) {
			return points[i].Err == nil
		}
		return points[i].Cost < points[j].Cost
	})
	return points
}

// Best returns the lowest-cost successful point.
func Best(points []Point) (Point, error) {
	for _, p := range points {
		if p.Err == nil {
			return p, nil
		}
	}
	return Point{}, fmt.Errorf("dse: no configuration evaluated successfully")
}

// Table renders the ranked points, one line each, with the cost metric
// named unit.
func Table(points []Point, unit string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%4s  %-44s %14s\n", "rank", "configuration", unit)
	for i, p := range points {
		if p.Err != nil {
			fmt.Fprintf(&b, "%4d  %-44s %14s (%v)\n", i+1, p.Config.Key(), "error", p.Err)
			continue
		}
		fmt.Fprintf(&b, "%4d  %-44s %14.3f\n", i+1, p.Config.Key(), p.Cost)
	}
	return b.String()
}
