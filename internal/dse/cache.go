package dse

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// cacheEntry is one memoized evaluation result.
type cacheEntry struct {
	Cost float64            `json:"cost"`
	Aux  map[string]float64 `json:"aux,omitempty"`
}

// CacheStats is the hit/miss accounting of one cache since creation.
type CacheStats struct {
	Hits   int // evaluations answered from memory or disk
	Misses int // evaluations that had to run
}

// HitRate returns Hits / (Hits + Misses), 0 for an unused cache.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Cache memoizes evaluation results under content-hash keys: the key
// string (canonically serialized configuration, see Canonical/HashSet)
// is hashed with SHA-256 and the entry persisted as <hash>.json under
// the cache directory, so identical configurations are free across
// process runs. A Cache with an empty directory is memory-only. Safe for
// concurrent use; hit/miss accounting via Stats.
type Cache struct {
	mu      sync.Mutex
	dir     string
	mem     map[string]cacheEntry
	memB    map[string][]byte // opaque-bytes entries (GetBytes/PutBytes)
	hits    int
	misses  int
	saveErr error // first persist failure (diagnosed, not fatal)
}

// NewCache opens (creating if needed) a cache directory; dir "" makes a
// memory-only cache.
func NewCache(dir string) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("dse: cache dir: %w", err)
		}
	}
	return &Cache{dir: dir, mem: map[string]cacheEntry{}, memB: map[string][]byte{}}, nil
}

// Stats returns the hit/miss counts accumulated so far.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses}
}

// Err returns the first persistence failure, if any. Lookups fall back
// to evaluation on read errors and keep working in memory on write
// errors, so a bad cache directory degrades to a cold cache rather than
// failing the sweep.
func (c *Cache) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.saveErr
}

// path maps a key to its file: sha256(key).json under the cache dir.
func (c *Cache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:])+".json")
}

// lookup returns the memoized entry for key, consulting memory first,
// then disk. Accounting: every call is a hit or a miss.
func (c *Cache) lookup(key string) (cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.mem[key]; ok {
		c.hits++
		return e, true
	}
	if c.dir != "" {
		if data, err := os.ReadFile(c.path(key)); err == nil {
			var e cacheEntry
			if err := json.Unmarshal(data, &e); err == nil {
				c.mem[key] = e
				c.hits++
				return e, true
			}
		}
	}
	c.misses++
	return cacheEntry{}, false
}

// binMagic frames persisted opaque-bytes entries: "dsebin1\n" + 4-byte
// little-endian CRC-32 (IEEE) of the payload + payload. The checksum is
// what lets a torn or corrupted entry degrade to a miss (re-evaluation)
// instead of serving wrong bytes — the same fail-closed contract the
// JSON entries get from Unmarshal.
const binMagic = "dsebin1\n"

// GetBytes looks up an opaque result payload stored under key —
// consulting memory first, then <sha256(key)>.bin under the cache
// directory. Every call is accounted as a hit or a miss in Stats, like
// the structured lookups; a missing, torn or checksum-corrupt entry is a
// miss. The returned slice must not be mutated by the caller.
func (c *Cache) GetBytes(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.memB[key]; ok {
		c.hits++
		return b, true
	}
	if c.dir != "" {
		if data, err := os.ReadFile(c.binPath(key)); err == nil {
			if b, ok := decodeBin(data); ok {
				c.memB[key] = b
				c.hits++
				return b, true
			}
		}
	}
	c.misses++
	return nil, false
}

// PutBytes stores an opaque result payload under key, persisting it
// (checksummed, via a temp-file rename so readers never observe a torn
// entry) when the cache has a directory. Write failures are recorded in
// Err, not propagated — the in-memory entry still serves this process.
func (c *Cache) PutBytes(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := append([]byte(nil), data...)
	c.memB[key] = cp
	if c.dir == "" {
		return
	}
	path := c.binPath(key)
	tmp := path + ".tmp"
	err := os.WriteFile(tmp, encodeBin(cp), 0o644)
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil && c.saveErr == nil {
		c.saveErr = fmt.Errorf("dse: cache persist: %w", err)
	}
}

// binPath maps a key to its opaque-bytes file: sha256(key).bin.
func (c *Cache) binPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:])+".bin")
}

func encodeBin(payload []byte) []byte {
	out := make([]byte, 0, len(binMagic)+4+len(payload))
	out = append(out, binMagic...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

func decodeBin(data []byte) ([]byte, bool) {
	if len(data) < len(binMagic)+4 || string(data[:len(binMagic)]) != binMagic {
		return nil, false
	}
	want := binary.LittleEndian.Uint32(data[len(binMagic):])
	payload := data[len(binMagic)+4:]
	if crc32.ChecksumIEEE(payload) != want {
		return nil, false
	}
	return payload, true
}

// store memoizes a successful evaluation, persisting it when the cache
// has a directory. Write failures are recorded in Err, not propagated:
// the in-memory entry still serves the current process.
func (c *Cache) store(key string, e cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mem[key] = e
	if c.dir == "" {
		return
	}
	data, err := json.Marshal(e)
	if err == nil {
		err = os.WriteFile(c.path(key), data, 0o644)
	}
	if err != nil && c.saveErr == nil {
		c.saveErr = fmt.Errorf("dse: cache persist: %w", err)
	}
}
