package dse

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/sim"
	"repro/internal/taskset"
)

// canonVersion guards the canonical serialization; bump on any format
// change so stale persisted cache entries can never be misattributed.
// The golden-hash test in key_test.go fails loudly on accidental drift.
const canonVersion = "tsv1"

// Canonical serializes a task set into its semantic normal form: every
// default is made explicit (policy, time model, personality, engine,
// CPUs, horizon, task type, the quantum only "rr" consumes), times are
// nanosecond integers, and fields appear in a fixed order — so two sets
// that simulate identically (reordered JSON fields, omitted defaults)
// serialize identically, and any semantically meaningful difference
// changes the bytes. Cache keys hash these bytes (HashSet); anything
// simulation-relevant that is missing here would let distinct
// configurations collide in the cache.
func Canonical(s *taskset.Set) []byte {
	cpus := s.CPUs
	if cpus < 1 {
		cpus = 1
	}
	policy := s.Policy
	if cpus > 1 {
		// The SMP runner treats everything but "g-edf" as fixed priority.
		if policy != "g-edf" {
			policy = "g-fp"
		}
	} else if policy == "" {
		policy = "priority"
	}
	var quantum sim.Time
	if policy == "rr" {
		quantum = sim.Time(s.QuantumUs * 1000)
	}
	tmodel := s.TimeModel
	if tmodel == "" {
		tmodel = "coarse"
	}
	pers := s.Personality
	if pers == "" {
		pers = "generic"
	}
	engine := s.Engine
	if engine == "" || cpus > 1 {
		engine = "goroutine"
	}
	horizon := sim.Time(s.HorizonMs * 1e6)
	if horizon <= 0 {
		horizon = sim.Second
	}

	var b bytes.Buffer
	fmt.Fprintf(&b, "%s policy=%q quantum=%d tmodel=%q pers=%q cpus=%d engine=%q horizon=%d tasks=%d\n",
		canonVersion, policy, int64(quantum), tmodel, pers, cpus, engine, int64(horizon), len(s.Tasks))
	for _, t := range s.Tasks {
		typ := t.Type
		if typ == "" {
			typ = "periodic"
		}
		fmt.Fprintf(&b, "task name=%q type=%q prio=%d period=%d wcet=%d start=%d cycles=%d segs=%d",
			t.Name, typ, t.Prio, int64(sim.Time(t.PeriodUs*1000)), int64(sim.Time(t.WcetUs*1000)),
			int64(sim.Time(t.StartUs*1000)), t.Cycles, len(t.ComputeUs))
		for _, c := range t.ComputeUs {
			fmt.Fprintf(&b, " %d", c*1000)
		}
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// HashSet returns the content hash of the set's canonical form — the
// cache key for memoized task-set evaluations.
func HashSet(s *taskset.Set) string {
	sum := sha256.Sum256(Canonical(s))
	return hex.EncodeToString(sum[:])
}
