package dse

import "math"

// metric reads one named objective off a point: "cost" is the primary
// Cost, anything else an Aux metric. A missing Aux metric reads as +Inf,
// so a point that never reported the metric is dominated by any point
// that did.
func metric(p *Point, name string) float64 {
	if name == "cost" {
		return p.Cost
	}
	if v, ok := p.Aux[name]; ok {
		return v
	}
	return math.Inf(1)
}

// dominates reports whether a Pareto-dominates b over the given
// objectives (all minimized): no worse in every metric and strictly
// better in at least one. Ties dominate nothing.
func dominates(a, b *Point, objectives []string) bool {
	better := false
	for _, name := range objectives {
		va, vb := metric(a, name), metric(b, name)
		if va > vb {
			return false
		}
		if va < vb {
			better = true
		}
	}
	return better
}

// assignFronts ranks the points by iterative non-dominated sorting:
// front 1 is the Pareto-optimal set, front 2 what becomes non-dominated
// once front 1 is removed, and so on. Failed evaluations keep Front 0
// and are excluded from dominance entirely (Explore sorts them last).
func assignFronts(points []Point, objectives []string) {
	remaining := make([]*Point, 0, len(points))
	for i := range points {
		points[i].Front = 0
		if points[i].Err == nil {
			remaining = append(remaining, &points[i])
		}
	}
	for front := 1; len(remaining) > 0; front++ {
		var next []*Point
		for _, p := range remaining {
			dominated := false
			for _, q := range remaining {
				if q != p && dominates(q, p, objectives) {
					dominated = true
					break
				}
			}
			if dominated {
				next = append(next, p)
			} else {
				p.Front = front
			}
		}
		if len(next) == len(remaining) {
			// Can't happen (a finite set always has a non-dominated
			// element), but never loop forever on a broken comparator.
			for _, p := range next {
				p.Front = front
			}
			return
		}
		remaining = next
	}
}

// ParetoFront returns the non-dominated points (Front == 1) of an
// exploration ranked with WithObjectives, in their explored order.
func ParetoFront(points []Point) []Point {
	var out []Point
	for _, p := range points {
		if p.Err == nil && p.Front == 1 {
			out = append(out, p)
		}
	}
	return out
}
