package dse

import (
	"fmt"

	"repro/internal/rtc"
	"repro/internal/runner"
	"repro/internal/sim"
)

// Variant is one fork of a checkpoint sweep: the scheduling knobs that
// may change at the fork point without invalidating the captured state.
type Variant struct {
	Name    string
	Policy  string
	Quantum sim.Time
}

// ForkResult is one variant's completed run.
type ForkResult struct {
	Variant Variant
	Result  *rtc.Result
	Err     error // restore error; Result is nil
}

// ForkSweep runs the shared prefix of a workload once on the rtc engine,
// snapshots at forkAt, and completes the run once per variant from the
// checkpoint — the "same workload, policy change at t=T" sweep of the
// design-space search, paying for [0, forkAt) once instead of once per
// variant. Results come back in variant order; jobs bounds the
// concurrent restores (each variant restores into its own session, so
// they parallelize like independent runs). Note that a fork to "rm"
// keeps the prefix's priorities: rate-monotonic assignment happens at
// session start, which the fork skips by design.
func ForkSweep(base rtc.Workload, forkAt sim.Time, variants []Variant, jobs int) ([]ForkResult, error) {
	ses, err := rtc.NewSession(base)
	if err != nil {
		return nil, fmt.Errorf("dse: fork sweep: %w", err)
	}
	if err := ses.RunUntil(forkAt); err != nil {
		return nil, fmt.Errorf("dse: fork sweep: prefix failed: %w", err)
	}
	cp, err := ses.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("dse: fork sweep: %w", err)
	}
	results := runner.Map(len(variants), runner.Options{Jobs: jobs}, func(i int) (*rtc.Result, error) {
		w := base
		w.Policy, w.Quantum = variants[i].Policy, variants[i].Quantum
		s, err := rtc.Restore(w, cp)
		if err != nil {
			return nil, err
		}
		s.RunUntil(w.Horizon)
		return s.Finish(), nil
	})
	out := make([]ForkResult, len(variants))
	for i, r := range results {
		out[i] = ForkResult{Variant: variants[i], Result: r.Value, Err: r.Err}
	}
	return out, nil
}
