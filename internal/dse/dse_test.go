package dse

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/vocoder"
)

func TestGridEnumeratesProduct(t *testing.T) {
	axes := []Axis{
		{Name: "a", Values: []string{"1", "2"}},
		{Name: "b", Values: []string{"x", "y", "z"}},
	}
	configs := Grid(axes)
	if len(configs) != 6 {
		t.Fatalf("grid size = %d, want 6", len(configs))
	}
	seen := map[string]bool{}
	for _, c := range configs {
		seen[c.Key()] = true
	}
	if len(seen) != 6 {
		t.Errorf("duplicate configurations: %v", seen)
	}
	if !seen["a=2 b=y"] {
		t.Error("missing a=2 b=y")
	}
}

func TestGridEmpty(t *testing.T) {
	configs := Grid(nil)
	if len(configs) != 1 || len(configs[0]) != 0 {
		t.Errorf("empty grid = %v, want one empty config", configs)
	}
}

func TestExploreRanksByCost(t *testing.T) {
	axes := []Axis{{Name: "n", Values: []string{"3", "1", "2"}}}
	points := Explore(axes, func(c Config) (float64, map[string]float64, error) {
		var v float64
		fmt.Sscanf(c["n"], "%f", &v)
		return v, map[string]float64{"sq": v * v}, nil
	})
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	if points[0].Config["n"] != "1" || points[2].Config["n"] != "3" {
		t.Errorf("ranking wrong: %v", points)
	}
	if points[1].Aux["sq"] != 4 {
		t.Errorf("aux lost: %v", points[1].Aux)
	}
	best, err := Best(points)
	if err != nil || best.Cost != 1 {
		t.Errorf("best = %v, %v", best, err)
	}
}

func TestExploreErrorsSortLast(t *testing.T) {
	axes := []Axis{{Name: "n", Values: []string{"bad", "1"}}}
	points := Explore(axes, func(c Config) (float64, map[string]float64, error) {
		if c["n"] == "bad" {
			return 0, nil, fmt.Errorf("boom")
		}
		return 1, nil, nil
	})
	if points[0].Err != nil || points[1].Err == nil {
		t.Errorf("error ordering wrong: %v", points)
	}
	if _, err := Best(points); err != nil {
		t.Errorf("Best: %v", err)
	}
	tbl := Table(points, "cost")
	if !strings.Contains(tbl, "error") || !strings.Contains(tbl, "1.000") {
		t.Errorf("table:\n%s", tbl)
	}
}

func TestBestAllFailed(t *testing.T) {
	points := Explore([]Axis{{Name: "x", Values: []string{"1"}}},
		func(c Config) (float64, map[string]float64, error) {
			return 0, nil, fmt.Errorf("nope")
		})
	if _, err := Best(points); err == nil {
		t.Error("Best over failures did not error")
	}
}

// TestVocoderExploration drives a real exploration: scheduling policy ×
// encoder/decoder priority order, cost = transcoding delay. The known
// optimum (encoder above decoder, any preemptive policy) must rank first.
func TestVocoderExploration(t *testing.T) {
	axes := []Axis{
		{Name: "policy", Values: []string{"priority", "fcfs"}},
		{Name: "order", Values: []string{"enc-first", "dec-first"}},
	}
	points := Explore(axes, func(c Config) (float64, map[string]float64, error) {
		par := vocoder.Small()
		if c["order"] == "dec-first" {
			par.PrioEnc, par.PrioDec = 2, 1
		}
		pol, err := core.PolicyByName(c["policy"], 0)
		if err != nil {
			return 0, nil, err
		}
		res, _, err := vocoder.RunArch(par, pol, core.TimeModelCoarse)
		if err != nil {
			return 0, nil, err
		}
		return float64(res.TranscodingDelay), map[string]float64{
			"switches": float64(res.ContextSwitches),
		}, nil
	})
	best, err := Best(points)
	if err != nil {
		t.Fatal(err)
	}
	// All configurations complete; the best must not be worse than any
	// other and the dec-first priority order must cost more switches or
	// delay under priority scheduling.
	for _, p := range points[1:] {
		if p.Err == nil && p.Cost < best.Cost {
			t.Errorf("ranking violated: %v before %v", best, p)
		}
	}
	if len(points) != 4 {
		t.Fatalf("explored %d points, want 4", len(points))
	}
}
