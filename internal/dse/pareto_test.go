package dse

import (
	"fmt"
	"reflect"
	"testing"
)

func pt(cost float64, aux map[string]float64) Point {
	return Point{Cost: cost, Aux: aux}
}

func TestDominates(t *testing.T) {
	objs := []string{"cost", "switches"}
	cases := []struct {
		name string
		a, b Point
		want bool
	}{
		{"strictly-better-both", pt(1, map[string]float64{"switches": 1}), pt(2, map[string]float64{"switches": 2}), true},
		{"better-one-equal-other", pt(1, map[string]float64{"switches": 2}), pt(2, map[string]float64{"switches": 2}), true},
		{"identical-ties-dominate-nothing", pt(1, map[string]float64{"switches": 1}), pt(1, map[string]float64{"switches": 1}), false},
		{"tradeoff-incomparable", pt(1, map[string]float64{"switches": 5}), pt(2, map[string]float64{"switches": 1}), false},
		{"worse-both", pt(3, map[string]float64{"switches": 3}), pt(1, map[string]float64{"switches": 1}), false},
		{"missing-aux-is-infinite", pt(1, map[string]float64{"switches": 1}), pt(1, nil), true},
		{"both-missing-aux-ties", pt(1, nil), pt(1, nil), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := dominates(&c.a, &c.b, objs); got != c.want {
				t.Errorf("dominates(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
			}
		})
	}
}

func TestAssignFronts(t *testing.T) {
	// Front 1: (1,3) and (3,1) trade off; (2,2) also non-dominated.
	// Front 2: (2,4) dominated by (1,3) only; (4,2) dominated by (3,1).
	// Front 3: (5,5) dominated by everything.
	points := []Point{
		pt(1, map[string]float64{"m": 3}),
		pt(3, map[string]float64{"m": 1}),
		pt(2, map[string]float64{"m": 2}),
		pt(2, map[string]float64{"m": 4}),
		pt(4, map[string]float64{"m": 2}),
		pt(5, map[string]float64{"m": 5}),
	}
	assignFronts(points, []string{"cost", "m"})
	want := []int{1, 1, 1, 2, 2, 3}
	for i, p := range points {
		if p.Front != want[i] {
			t.Errorf("point %d (cost=%v m=%v): front %d, want %d", i, p.Cost, p.Aux["m"], p.Front, want[i])
		}
	}
}

func TestAssignFrontsSkipsErrors(t *testing.T) {
	points := []Point{
		pt(1, nil),
		{Cost: 0, Err: fmt.Errorf("boom")}, // cost 0 would dominate everything if ranked
		pt(2, nil),
	}
	assignFronts(points, []string{"cost"})
	if points[1].Front != 0 {
		t.Errorf("failed point got front %d, want 0", points[1].Front)
	}
	if points[0].Front != 1 || points[2].Front != 2 {
		t.Errorf("fronts = %d,%d, want 1,2", points[0].Front, points[2].Front)
	}
}

// TestExploreObjectivesErrorsLast: failed cells sort after every ranked
// front regardless of their would-be cost.
func TestExploreObjectivesErrorsLast(t *testing.T) {
	axes := []Axis{{Name: "n", Values: []string{"bad", "2", "1"}}}
	points := Explore(axes, func(c Config) (float64, map[string]float64, error) {
		if c["n"] == "bad" {
			return -100, nil, fmt.Errorf("boom")
		}
		var v float64
		fmt.Sscanf(c["n"], "%f", &v)
		return v, map[string]float64{"m": -v}, nil
	}, WithObjectives("cost", "m"), WithJobs(1))
	if points[len(points)-1].Err == nil {
		t.Errorf("error cell not last: %v", points)
	}
	for _, p := range points[:len(points)-1] {
		if p.Err != nil {
			t.Errorf("error cell ranked before a successful one: %v", points)
		}
	}
}

// TestSingleObjectiveReducesToScalarRanking: WithObjectives("cost")
// orders points exactly like the default cost ranking.
func TestSingleObjectiveReducesToScalarRanking(t *testing.T) {
	axes := []Axis{{Name: "n", Values: []string{"4", "1", "3", "2"}}}
	eval := func(c Config) (float64, map[string]float64, error) {
		var v float64
		fmt.Sscanf(c["n"], "%f", &v)
		return v, nil, nil
	}
	scalar := Explore(axes, eval, WithJobs(1))
	pareto := Explore(axes, eval, WithObjectives("cost"), WithJobs(1))
	var a, b []string
	for i := range scalar {
		a = append(a, scalar[i].Config["n"])
		b = append(b, pareto[i].Config["n"])
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("single-objective order %v != scalar order %v", b, a)
	}
	for i, p := range pareto {
		if p.Front != i+1 {
			t.Errorf("distinct costs must each form a front: point %d has front %d", i, p.Front)
		}
	}
}

func TestParetoFront(t *testing.T) {
	axes := []Axis{{Name: "n", Values: []string{"1", "2"}}}
	points := Explore(axes, func(c Config) (float64, map[string]float64, error) {
		if c["n"] == "1" {
			return 1, map[string]float64{"m": 2}, nil
		}
		return 2, map[string]float64{"m": 1}, nil
	}, WithObjectives("cost", "m"), WithJobs(1))
	front := ParetoFront(points)
	if len(front) != 2 {
		t.Errorf("both trade-off points belong to the front, got %d: %v", len(front), front)
	}
}
