// Acceptance checks for the telemetry layer against the vocoder design:
// the exported Chrome trace must be schema-valid (Perfetto's legacy JSON
// importer) and the context-switch count derived from the trace file
// alone must equal core.StatsSnapshot().ContextSwitches exactly.
package repro

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/vocoder"
)

// perfettoEvent mirrors the Chrome trace-event JSON schema fields the
// importer requires. DisallowUnknownFields below pins our exporter to
// exactly this schema.
type perfettoEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   int            `json:"id"`
	S    string         `json:"s"`
	Args map[string]any `json:"args"`
}

type perfettoTrace struct {
	TraceEvents     []perfettoEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
}

func TestVocoderChromeTraceAcceptance(t *testing.T) {
	tel := telemetry.NewCapture()
	res, _, err := vocoder.RunArch(vocoder.Small(), core.PriorityPolicy{},
		core.TimeModelCoarse, tel.Bus)
	if err != nil {
		t.Fatalf("vocoder architecture run: %v", err)
	}

	var buf bytes.Buffer
	if err := telemetry.WriteChromeTrace(&buf, tel.Collector.Events); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}

	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	var tr perfettoTrace
	if err := dec.Decode(&tr); err != nil {
		t.Fatalf("trace is not schema-valid Chrome trace-event JSON: %v", err)
	}
	if dec.More() {
		t.Fatal("trailing JSON after the trace envelope")
	}
	if tr.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ns", tr.DisplayTimeUnit)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	// Reconstruct the context-switch count from the trace file alone:
	// running (X) slices in time order, counting handovers to a task
	// different from the one that last ran. This is the core model's
	// definition (lastRun persists across idle gaps), applied to the
	// exported artifact rather than internal state.
	type sl struct {
		ts   float64
		name string
	}
	var slices []sl
	for _, e := range tr.TraceEvents {
		if e.Ph == "X" && e.Cat == "running" {
			slices = append(slices, sl{e.Ts, e.Name})
		}
	}
	sort.SliceStable(slices, func(i, j int) bool { return slices[i].ts < slices[j].ts })
	var switches uint64
	last := ""
	for _, s := range slices {
		if last != "" && s.name != last {
			switches++
		}
		last = s.name
	}
	if switches != res.ContextSwitches {
		t.Errorf("context switches from trace file = %d, StatsSnapshot = %d",
			switches, res.ContextSwitches)
	}
	if switches == 0 {
		t.Error("vocoder run produced no context switches; scenario is degenerate")
	}

	// Metrics cross-check on the same run: the aggregator's count (also
	// derived purely from events) must agree too.
	tel.SetEnd(res.SimEnd)
	rep := tel.Report()
	var aggSwitches uint64
	for _, pe := range rep.PEs {
		aggSwitches += pe.ContextSwitches
	}
	if aggSwitches != res.ContextSwitches {
		t.Errorf("aggregator context switches = %d, StatsSnapshot = %d",
			aggSwitches, res.ContextSwitches)
	}
}
