; sum.asm — sum the array and report via the debug trap.
	ldi r1, arr      ; base address
	ldi r2, 5        ; length
	ldi r0, 0        ; sum
loop:
	ldx r3, r1, 0
	add r0, r3
	addi r1, 1
	addi r2, -1
	cmpi r2, 0
	bne loop
	trap 6           ; print sum (debug console)
	st result, r0
	halt
.data
arr:    .word 3, 1, 4, 1, 5
result: .word 0
