// Telemetry overhead: benchmarks of the vocoder architecture model with
// no observer, with the compact binary ring sink, with the metrics
// aggregator, and with the full capture pipeline — plus a CI guard that
// keeps the ring sink's overhead bounded relative to the uninstrumented
// baseline.
//
//	go test -bench 'BenchmarkTelemetry' -benchmem
//	TELEMETRY_OVERHEAD_GUARD=1 go test -run TestTelemetryOverheadGuard
package repro

import (
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/vocoder"
)

// overheadParams is the guard workload: the vocoder structure at enough
// frames that the per-event hook path dominates fixed setup costs (the
// ring's one-time buffer allocation amortizes away).
func overheadParams() vocoder.Params {
	p := vocoder.Small()
	p.Frames = 64
	return p
}

// vocoderArchOnce runs the reference workload, optionally instrumented.
func vocoderArchOnce(tb testing.TB, bus *telemetry.Bus) {
	var err error
	if bus != nil {
		_, _, err = vocoder.RunArch(overheadParams(), core.PriorityPolicy{},
			core.TimeModelCoarse, bus)
	} else {
		_, _, err = vocoder.RunArch(overheadParams(), core.PriorityPolicy{},
			core.TimeModelCoarse)
	}
	if err != nil {
		tb.Fatal(err)
	}
}

func BenchmarkTelemetryNoObserver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		vocoderArchOnce(b, nil)
	}
}

func BenchmarkTelemetryRingSink(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// A fresh fixed-capacity ring per run, as an always-on flight
		// recorder would use: Emit stops allocating once the buffer fills.
		vocoderArchOnce(b, telemetry.NewBus(telemetry.NewRing(4096)))
	}
}

func BenchmarkTelemetryAggregator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		vocoderArchOnce(b, telemetry.NewBus(telemetry.NewAggregator()))
	}
}

func BenchmarkTelemetryFullCapture(b *testing.B) {
	for i := 0; i < b.N; i++ {
		vocoderArchOnce(b, telemetry.NewCapture().Bus)
	}
}

// minWall returns the minimum wall time of `trials` runs — the standard
// noise-robust estimator for a deterministic workload.
func minWall(tb testing.TB, trials int, fn func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < trials; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	_ = tb
	return best
}

// TestTelemetryOverheadGuard fails if the ring-sink-instrumented run
// exceeds a generous multiple of the no-observer baseline. Wall-clock
// comparisons are noisy in CI, so the guard is opt-in (scripts/check.sh
// sets TELEMETRY_OVERHEAD_GUARD=1) and the threshold deliberately loose:
// it catches accidental O(n) regressions in the hook path (per-event
// allocation, formatting, locking), not small constant factors.
func TestTelemetryOverheadGuard(t *testing.T) {
	if os.Getenv("TELEMETRY_OVERHEAD_GUARD") != "1" {
		t.Skip("set TELEMETRY_OVERHEAD_GUARD=1 to run the overhead guard")
	}
	const trials = 5
	const maxRatio = 3.0

	// Warm up both paths once so lazy initialization is off the clock.
	vocoderArchOnce(t, nil)
	vocoderArchOnce(t, telemetry.NewBus(telemetry.NewRing(4096)))

	base := minWall(t, trials, func() { vocoderArchOnce(t, nil) })
	ring := minWall(t, trials, func() {
		vocoderArchOnce(t, telemetry.NewBus(telemetry.NewRing(4096)))
	})
	ratio := float64(ring) / float64(base)
	t.Logf("baseline %v, ring sink %v, ratio %.2fx (limit %.1fx)", base, ring, ratio, maxRatio)
	if ratio > maxRatio {
		t.Errorf("ring-sink telemetry overhead %.2fx exceeds %.1fx of the no-observer baseline (%v vs %v)",
			ratio, maxRatio, ring, base)
	}
}
