// Quickstart: two tasks on the abstract RTOS model.
//
// A high-priority "control" task blocks on a semaphore that a lower
// priority "worker" task releases after each processing step — the
// smallest useful multi-tasking model: task creation, priorities,
// preemption, events and time modeling, all on the SLDL simulation
// kernel.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	k := sim.NewKernel()

	// One processing element's RTOS model instance with fixed-priority
	// preemptive scheduling (the paper's default algorithm).
	rtos := core.New(k, "CPU0", core.PriorityPolicy{})
	rec := trace.New("quickstart")
	rec.Attach(rtos)

	f := channel.RTOSFactory{OS: rtos}
	done := channel.NewSemaphore(f, "done", 0)

	// Tasks are created with the paper's task_create parameters and bound
	// to their simulation process by task_activate at the top of the
	// process body (paper Figure 5).
	control := rtos.TaskCreate("control", core.Aperiodic, 0, 0, 1) // high
	worker := rtos.TaskCreate("worker", core.Aperiodic, 0, 0, 5)   // low

	k.Spawn("control", func(p *sim.Proc) {
		rtos.TaskActivate(p, control)
		for i := 0; i < 3; i++ {
			done.Acquire(p) // wait for one work item
			rtos.TimeWait(p, 2*sim.Millisecond)
			fmt.Printf("[%8v] control: handled result %d\n", p.Now(), i)
		}
		rtos.TaskTerminate(p)
	})
	k.Spawn("worker", func(p *sim.Proc) {
		rtos.TaskActivate(p, worker)
		for i := 0; i < 3; i++ {
			rtos.TimeWait(p, 10*sim.Millisecond) // modeled computation
			fmt.Printf("[%8v] worker:  produced item %d\n", p.Now(), i)
			done.Release(p) // control preempts here
		}
		rtos.TaskTerminate(p)
	})

	rtos.Start(nil)
	if err := k.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "simulation error:", err)
		os.Exit(1)
	}

	st := rtos.StatsSnapshot()
	fmt.Printf("\nfinished at %v: %d dispatches, %d context switches, %d preemptions\n",
		k.Now(), st.Dispatches, st.ContextSwitches, st.Preemptions)
	fmt.Println("\nschedule:")
	if err := rec.Gantt(os.Stdout, trace.GanttOptions{Width: 60}); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}
