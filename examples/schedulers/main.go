// Schedulers: one periodic task set under every scheduling algorithm the
// RTOS model supports (the paper's start(sched_alg) parameter) — FCFS,
// round-robin, fixed priority, rate-monotonic, and EDF — comparing
// deadline misses, context switches and preemptions. The same unmodified
// application model runs under each policy: evaluating scheduling
// alternatives is exactly the design-space exploration the paper's
// abstract RTOS model exists for.
//
// Run with: go run ./examples/schedulers [-util 0.85] [-n 5] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	util := flag.Float64("util", 0.85, "total processor utilization")
	n := flag.Int("n", 5, "number of periodic tasks")
	seed := flag.Uint64("seed", 1, "task set generator seed")
	flag.Parse()

	specs := workload.PeriodicSet(workload.NewRNG(*seed), *n, *util)
	fmt.Printf("task set (U = %.3f):\n", workload.Utilization(specs))
	for _, s := range specs {
		fmt.Printf("  %-4s period %-8v wcet %v\n", s.Name, s.Period, s.WCET)
	}

	policies := []core.Policy{
		core.FCFSPolicy{},
		core.RoundRobinPolicy{Quantum: 5 * sim.Millisecond},
		core.PriorityPolicy{},
		core.RMPolicy{},
		core.EDFPolicy{},
	}
	horizon := 5 * sim.Second
	fmt.Printf("\n%-10s %12s %10s %10s %12s %12s\n",
		"policy", "activations", "missed", "missRatio", "ctxSwitches", "preemptions")
	for _, pol := range policies {
		res, err := workload.Run(specs, pol, core.TimeModelSegmented, horizon)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("%-10s %12d %10d %9.1f%% %12d %12d\n",
			res.Policy, res.Activations, res.Missed, 100*res.MissRatio(),
			res.ContextSwitches, res.Preemptions)
	}
	fmt.Println("\n(EDF is optimal: for any feasible set it should show zero misses;")
	fmt.Println(" non-preemptive FCFS suffers blocking by long low-rate tasks.)")
}
