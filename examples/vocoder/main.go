// Vocoder: the paper's Table 1 experiment as a runnable demo.
//
// Transcodes speech frames through encoder and decoder tasks in
// back-to-back mode and reports the Table 1 metrics — lines of code,
// simulation (wall) time, context switches and transcoding delay — for
// the unscheduled specification model, the RTOS-model-based architecture
// model, and the ISS-based implementation model.
//
// Run with: go run ./examples/vocoder [-frames N] [-skipidle]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/loccount"
	"repro/internal/telemetry"
	"repro/internal/vocoder"
)

func main() {
	frames := flag.Int("frames", 163, "speech frames to transcode")
	skipIdle := flag.Bool("skipidle", false, "skip idle-loop interpretation in the implementation model")
	traceOut := flag.String("trace-out", "", "write the architecture run as Chrome trace-event JSON (Perfetto)")
	metricsOut := flag.String("metrics-out", "", "write architecture scheduler metrics in Prometheus text format")
	flag.Parse()

	par := vocoder.Default()
	par.Frames = *frames

	spec, _, err := vocoder.RunSpec(par)
	check(err)
	tel := telemetry.NewCapture()
	arch, _, err := vocoder.RunArch(par, core.PriorityPolicy{}, core.TimeModelCoarse, tel.Bus)
	check(err)
	impl, _, err := vocoder.RunImpl(par, *skipIdle)
	check(err)

	specLoC, archLoC, implLoC, locErr := loccount.ModelLoC(vocoder.FirmwareLines())

	fmt.Printf("Vocoder, %d frames of 20 ms, back-to-back transcoding (paper Table 1)\n\n", par.Frames)
	fmt.Printf("%-22s %15s %15s %15s\n", "", "unscheduled", "architecture", "implementation")
	if locErr == nil {
		fmt.Printf("%-22s %15d %15d %15d\n", "Lines of Code", specLoC, archLoC, implLoC)
	} else {
		fmt.Printf("%-22s %45s\n", "Lines of Code", "(unavailable: "+locErr.Error()+")")
	}
	fmt.Printf("%-22s %15v %15v %15v\n", "Execution Time", spec.Wall.Round(10e3), arch.Wall.Round(10e3), impl.Wall.Round(10e3))
	fmt.Printf("%-22s %15d %15d %15d\n", "Context switches", spec.ContextSwitches, arch.ContextSwitches, impl.ContextSwitches)
	fmt.Printf("%-22s %15v %15v %15v\n", "Transcoding delay", spec.TranscodingDelay, arch.TranscodingDelay, impl.TranscodingDelay)
	fmt.Printf("\nimplementation model: %d instructions retired, %d cycles\n", impl.Instructions, impl.KernelCycles)
	fmt.Println("\npaper's values (Sun/DSP56600 testbed): LoC 13475/15552/79096,")
	fmt.Println("execution 24.0s/24.4s/5h, switches 0/327/326, delay 9.7ms/12.5ms/11.7ms")
	if *traceOut != "" {
		check(tel.WriteTraceFile(*traceOut))
		fmt.Printf("\nChrome trace (architecture model) written to %s\n", *traceOut)
	}
	if *metricsOut != "" {
		check(tel.WriteMetricsFile(*metricsOut))
		fmt.Printf("metrics (architecture model) written to %s\n", *metricsOut)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
