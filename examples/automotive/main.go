// Automotive: periodic hard-real-time control tasks on the RTOS model —
// the task class the paper's task_create(…, period, wcet) and
// task_endcycle interface exists for.
//
// An engine controller runs three periodic tasks (ABS 5 ms, fuel
// injection 10 ms, dashboard 100 ms) under rate-monotonic scheduling,
// plus a sporadic crank-synchronization interrupt whose handler releases
// a high-priority aperiodic task. The demo validates deadlines in a
// nominal configuration, then overloads the fuel task to show the model
// catching the misses — the early validation the paper's flow is for.
//
// Run with: go run ./examples/automotive [-overload]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

func run(fuelWCET sim.Time) (tasks []*core.Task, st core.Stats, rec *trace.Recorder, err error) {
	k := sim.NewKernel()
	rtos := core.New(k, "ECU", core.RMPolicy{}, core.WithTimeModel(core.TimeModelSegmented))
	rec = trace.New("ecu")
	rec.Attach(rtos)

	mkPeriodic := func(name string, period, wcet sim.Time) *core.Task {
		task := rtos.TaskCreate(name, core.Periodic, period, wcet, 0)
		p := k.Spawn(name, func(p *sim.Proc) {
			rtos.TaskActivate(p, task)
			for {
				rtos.TimeWait(p, wcet)
				rtos.TaskEndCycle(p)
			}
		})
		p.SetDaemon(true)
		return task
	}
	abs := mkPeriodic("abs", 5*sim.Millisecond, 1200*sim.Microsecond)
	fuel := mkPeriodic("fuel", 10*sim.Millisecond, fuelWCET)
	dash := mkPeriodic("dash", 100*sim.Millisecond, 8*sim.Millisecond)

	// Crank sensor: sporadic interrupt releasing a short aperiodic task.
	crankSem := channel.NewSemaphore(channel.RTOSFactory{OS: rtos}, "crank", 0)
	crank := rtos.TaskCreate("crank", core.Aperiodic, 0, 300*sim.Microsecond, -1) // above all periodic
	cp := k.Spawn("crank", func(p *sim.Proc) {
		rtos.TaskActivate(p, crank)
		for {
			crankSem.Acquire(p)
			rtos.TimeWait(p, 300*sim.Microsecond)
		}
	})
	cp.SetDaemon(true)
	irqProc := k.Spawn("crank.sensor", func(p *sim.Proc) {
		for {
			p.WaitFor(7300 * sim.Microsecond) // ~8200 rpm, deliberately un-harmonic
			rtos.InterruptEnter(p, "crank")
			crankSem.Release(p)
			rtos.InterruptReturn(p, "crank")
		}
	})
	irqProc.SetDaemon(true)

	rtos.Start(nil)
	if err = k.RunUntil(1 * sim.Second); err != nil {
		return nil, core.Stats{}, nil, err
	}
	return []*core.Task{abs, fuel, dash, crank}, rtos.StatsSnapshot(), rec, nil
}

func main() {
	overload := flag.Bool("overload", false, "raise the fuel task's execution time past feasibility")
	flag.Parse()

	fuelWCET := 3 * sim.Millisecond
	if *overload {
		fuelWCET = 7 * sim.Millisecond // U jumps past 1 with abs+dash+crank
	}
	tasks, st, rec, err := run(fuelWCET)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulation error:", err)
		os.Exit(1)
	}

	fmt.Printf("ECU, 1 s of operation, rate-monotonic, segmented time model (fuel WCET %v)\n\n", fuelWCET)
	fmt.Printf("%-8s %10s %12s %8s %10s\n", "task", "period", "cycles", "missed", "cpu")
	for _, t := range tasks {
		period := "sporadic"
		if t.Type() == core.Periodic {
			period = t.Period().String()
		}
		fmt.Printf("%-8s %10s %12d %8d %10v\n",
			t.Name(), period, t.Activations(), t.MissedDeadlines(), t.CPUTime())
	}
	fmt.Printf("\ndispatches %d, context switches %d, preemptions %d, idle %v\n",
		st.Dispatches, st.ContextSwitches, st.Preemptions, st.IdleTime)
	en := (&core.PowerModel{ActiveMW: 350, IdleMW: 40})
	_ = en
	fmt.Printf("energy @ 350/40 mW: %.1f µJ over the second\n",
		energyMicroJ(tasks, st))
	fmt.Println("\nfirst 50 ms of the schedule:")
	rec.Gantt(os.Stdout, trace.GanttOptions{To: 50 * sim.Millisecond, Width: 70})
	if *overload {
		fmt.Println("\n(the fuel task overruns: misses accumulate — caught in the")
		fmt.Println(" architecture model, long before an ECU bench would)")
	}
}

// energyMicroJ evaluates the two-state power model over the run.
func energyMicroJ(tasks []*core.Task, st core.Stats) float64 {
	pm := core.PowerModel{ActiveMW: 350, IdleMW: 40}
	active := pm.ActiveMW * float64(st.BusyTime)
	idle := pm.IdleMW * float64(st.IdleTime)
	return (active + idle) / 1e9 // mW·ns → µJ
}
