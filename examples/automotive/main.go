// Automotive: periodic hard-real-time control tasks on the RTOS model —
// the task class the paper's task_create(…, period, wcet) and
// task_endcycle interface exists for.
//
// An engine controller runs three periodic tasks (ABS 5 ms, fuel
// injection 10 ms, dashboard 100 ms) under rate-monotonic scheduling,
// plus a sporadic crank-synchronization interrupt whose handler releases
// a high-priority aperiodic task. The demo validates deadlines in a
// nominal configuration, then overloads the fuel task to show the model
// catching the misses — the early validation the paper's flow is for.
// The -personality flag swaps the RTOS API the tasks program against
// (generic paper model, µITRON, OSEK) on the same scheduler, the paper's
// RTOS-library axis; EXPERIMENTS.md records the measured comparison.
//
// Run with: go run ./examples/automotive [-overload] [-personality itron]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/personality"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func run(fuelWCET sim.Time, pers string) (tasks []*core.Task, st core.Stats, rep *telemetry.Report, rec *trace.Recorder, err error) {
	k := sim.NewKernel()
	rtos := core.New(k, "ECU", core.RMPolicy{}, core.WithTimeModel(core.TimeModelSegmented))
	rec = trace.New("ecu")
	rec.Attach(rtos)
	agg := telemetry.NewAggregator()
	telemetry.NewBus(agg).Attach(rtos)
	rt, err := personality.New(pers, rtos)
	if err != nil {
		return nil, core.Stats{}, nil, nil, err
	}

	mkPeriodic := func(name string, period, wcet sim.Time) *core.Task {
		task := rt.TaskCreate(name, core.Periodic, period, wcet, 0)
		p := k.Spawn(name, func(p *sim.Proc) {
			rt.Activate(p, task)
			for {
				rt.Compute(p, wcet)
				rt.EndCycle(p)
			}
		})
		p.SetDaemon(true)
		return task
	}
	abs := mkPeriodic("abs", 5*sim.Millisecond, 1200*sim.Microsecond)
	fuel := mkPeriodic("fuel", 10*sim.Millisecond, fuelWCET)
	dash := mkPeriodic("dash", 100*sim.Millisecond, 8*sim.Millisecond)

	// Crank sensor: sporadic interrupt releasing a short aperiodic task
	// through the personality's native semaphore kind.
	crankSem := rt.NewSemaphore("crank", 0)
	crank := rt.TaskCreate("crank", core.Aperiodic, 0, 300*sim.Microsecond, -1) // above all periodic
	cp := k.Spawn("crank", func(p *sim.Proc) {
		rt.Activate(p, crank)
		for {
			crankSem.Acquire(p)
			rt.Compute(p, 300*sim.Microsecond)
		}
	})
	cp.SetDaemon(true)
	irqProc := k.Spawn("crank.sensor", func(p *sim.Proc) {
		for {
			p.WaitFor(7300 * sim.Microsecond) // ~8200 rpm, deliberately un-harmonic
			rtos.InterruptEnter(p, "crank")
			crankSem.Release(p)
			rtos.InterruptReturn(p, "crank")
		}
	})
	irqProc.SetDaemon(true)

	rtos.Start(nil)
	if err = k.RunUntil(1 * sim.Second); err != nil {
		return nil, core.Stats{}, nil, nil, err
	}
	agg.SetEnd(k.Now())
	return []*core.Task{abs, fuel, dash, crank}, rtos.StatsSnapshot(), agg.Report(), rec, nil
}

func main() {
	overload := flag.Bool("overload", false, "raise the fuel task's execution time past feasibility")
	pers := flag.String("personality", "", "RTOS personality (generic|itron|osek)")
	flag.Parse()

	fuelWCET := 3 * sim.Millisecond
	if *overload {
		fuelWCET = 7 * sim.Millisecond // U jumps past 1 with abs+dash+crank
	}
	tasks, st, rep, rec, err := run(fuelWCET, *pers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulation error:", err)
		os.Exit(1)
	}

	label := *pers
	if label == "" {
		label = "generic"
	}
	fmt.Printf("ECU, 1 s of operation, rate-monotonic, segmented time model, %s personality (fuel WCET %v)\n\n",
		label, fuelWCET)
	blocking := map[string]sim.Time{}
	for _, pe := range rep.PEs {
		for _, tr := range pe.Tasks {
			blocking[tr.Task] = tr.Blocking
		}
	}
	fmt.Printf("%-8s %10s %12s %8s %10s %12s\n", "task", "period", "cycles", "missed", "cpu", "blocked")
	for _, t := range tasks {
		period := "sporadic"
		if t.Type() == core.Periodic {
			period = t.Period().String()
		}
		fmt.Printf("%-8s %10s %12d %8d %10v %12v\n",
			t.Name(), period, t.Activations(), t.MissedDeadlines(), t.CPUTime(), blocking[t.Name()])
	}
	fmt.Printf("\ndispatches %d, context switches %d, preemptions %d, idle %v\n",
		st.Dispatches, st.ContextSwitches, st.Preemptions, st.IdleTime)
	fmt.Printf("energy @ 350/40 mW: %.1f µJ over the second\n",
		energyMicroJ(st))
	fmt.Println("\nfirst 50 ms of the schedule:")
	rec.Gantt(os.Stdout, trace.GanttOptions{To: 50 * sim.Millisecond, Width: 70})
	if *overload {
		fmt.Println("\n(the fuel task overruns: misses accumulate — caught in the")
		fmt.Println(" architecture model, long before an ECU bench would)")
	}
}

// energyMicroJ evaluates the two-state power model over the run.
func energyMicroJ(st core.Stats) float64 {
	pm := core.PowerModel{ActiveMW: 350, IdleMW: 40}
	active := pm.ActiveMW * float64(st.BusyTime)
	idle := pm.IdleMW * float64(st.IdleTime)
	return (active + idle) / 1e9 // mW·ns → µJ
}
