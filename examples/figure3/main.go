// Figure 3 / Figure 8: the paper's running example.
//
// Builds the single-PE design of the paper's Figure 3 — behavior B1
// followed by the parallel composition of B2 and B3, channels c1/c2, and
// a bus-driver ISR signalling a semaphore on an external interrupt — and
// simulates it twice:
//
//  1. as the unscheduled specification model (paper Figure 8(a)), where
//     B2 and B3 execute truly in parallel, and
//  2. as the RTOS-based architecture model under priority scheduling
//     (Figure 8(b)), where tasks interleave and the interrupt at t4 takes
//     effect at t4', the end of task B2's current time step.
//
// Run with: go run ./examples/figure3 [-events]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	events := flag.Bool("events", false, "print the full event lists")
	traceOut := flag.String("trace-out", "", "write the architecture run as Chrome trace-event JSON (Perfetto)")
	metricsOut := flag.String("metrics-out", "", "write architecture scheduler metrics in Prometheus text format")
	flag.Parse()

	par := models.DefaultFigure3()

	specRec, err := models.Figure3Unscheduled(par)
	check(err)
	tel := telemetry.NewCapture()
	archRec, osm, err := models.Figure3Architecture(par, core.PriorityPolicy{}, core.TimeModelCoarse, tel.Bus)
	check(err)
	segRec, _, err := models.Figure3Architecture(par, core.PriorityPolicy{}, core.TimeModelSegmented)
	check(err)

	gopts := trace.GanttOptions{Width: 64, Tasks: []string{"B1", "B2", "B3"}}

	fmt.Println("=== Figure 8(a): unscheduled specification model ===")
	fmt.Println("B2 and B3 overlap; delays are truly concurrent.")
	check(specRec.Gantt(os.Stdout, gopts))
	fmt.Printf("overlap(B2,B3) = %v, end = %v\n\n", specRec.Overlap("B2", "B3"), specRec.End())

	fmt.Println("=== Figure 8(b): architecture model, priority scheduling, coarse time ===")
	fmt.Println("Tasks serialize; the interrupt at t4 is served at t4' (end of B2's d6).")
	archOpts := gopts
	archOpts.Tasks = []string{"PE", "B2", "B3"} // B1 runs inside the PE main task
	check(archRec.Gantt(os.Stdout, archOpts))
	st := osm.StatsSnapshot()
	fmt.Printf("overlap(B2,B3) = %v, end = %v, contextSwitches = %d, preemptions = %d\n",
		archRec.Overlap("B2", "B3"), archRec.End(), st.ContextSwitches, st.Preemptions)
	fmt.Printf("interrupt at t4 = %v; B3 receives its data at t4' = %v (coarse model)\n\n",
		par.IRQAt, archRec.MarkerTimes("ext-data")[0])

	fmt.Println("=== extension: segmented time model (immediate preemption) ===")
	fmt.Printf("B3 receives its data already at %v (= t4)\n\n", segRec.MarkerTimes("ext-data")[0])

	if *events {
		fmt.Println("--- event list, architecture model ---")
		check(archRec.EventList(os.Stdout))
	}
	if *traceOut != "" {
		check(tel.WriteTraceFile(*traceOut))
		fmt.Printf("Chrome trace written to %s\n", *traceOut)
	}
	if *metricsOut != "" {
		check(tel.WriteMetricsFile(*metricsOut))
		fmt.Printf("metrics written to %s\n", *metricsOut)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
