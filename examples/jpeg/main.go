// JPEG: hardware/software partitioning explored on system-level models —
// the second classic demonstrator of the authors' SoC Environment flow.
//
// A block pipeline (DCT → quantization → Huffman) encodes an image under
// three mappings:
//
//  1. unscheduled specification (all stages truly concurrent),
//  2. pure software (all stages as RTOS tasks on one CPU),
//  3. HW/SW partition (DCT on a bus-attached accelerator, rest on the CPU).
//
// The RTOS model makes mapping 2 and the CPU side of mapping 3 honest:
// stage delays serialize under the scheduler instead of overlapping
// freely, which is exactly the effect that motivates offloading the DCT.
//
// Run with: go run ./examples/jpeg [-blocks N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/models"
)

func main() {
	blocks := flag.Int("blocks", 256, "number of 8x8 blocks to encode")
	flag.Parse()

	par := models.DefaultJPEG()
	par.Blocks = *blocks

	spec, _, err := models.JPEGSpec(par)
	check(err)
	sw, _, err := models.JPEGSW(par, core.PriorityPolicy{}, core.TimeModelCoarse)
	check(err)
	hw, _, bus, err := models.JPEGHWSW(par, core.PriorityPolicy{}, core.TimeModelCoarse)
	check(err)

	fmt.Printf("JPEG encoder, %d blocks (DCT %v sw / %v hw, quant %v, huff %v per block)\n\n",
		par.Blocks, par.DCTTimeSW, par.DCTTimeHW, par.QuantTime, par.HuffTime)
	fmt.Printf("%-24s %16s %16s %14s\n", "mapping", "total", "per block", "ctx switches")
	for _, r := range []models.JPEGResults{spec, sw, hw} {
		fmt.Printf("%-24s %16v %16v %14d\n", r.Model, r.Total, r.PerBlock, r.CtxSwitch)
	}
	fmt.Printf("\nHW/SW: speedup %.2fx over pure software; bus busy %v over %d transfers\n",
		float64(sw.Total)/float64(hw.Total), bus.BusyTime(), bus.Transfers())
	fmt.Println("(the accelerator lets quantization and Huffman overlap the DCT again,")
	fmt.Println(" recovering most of the specification model's pipeline parallelism)")
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
