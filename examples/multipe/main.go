// Multi-PE: a heterogeneous system architecture with per-PE RTOS
// instances, a shared bus and interrupt-driven inter-PE links.
//
// The system models a small signal-processing pipeline:
//
//	sensor (HW PE) --bus--> dsp (SW PE, RTOS: filter + stats tasks)
//	                           \--bus--> host (SW PE, RTOS: logger task)
//
// The sensor produces samples periodically; the DSP's filter task
// processes them (woken by the link's ISR through a semaphore, the
// paper's bus-driver pattern) while a lower-priority statistics task runs
// in the background; filtered results travel over the same bus to the
// host PE's logger task. Each software PE runs its own instance of the
// abstract RTOS model, demonstrating "for each PE in the system a RTOS
// model ... is imported from the library and instantiated in the PE".
//
// Run with: go run ./examples/multipe [-samples N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	samples := flag.Int("samples", 10, "sensor samples to process")
	flag.Parse()

	k := sim.NewKernel()
	bus := arch.NewBus(k, "sysbus", 2*sim.Microsecond, 100) // 100 ns/byte

	sensor := arch.NewHWPE(k, "sensor")
	dsp := arch.NewSWPE(k, "dsp", core.PriorityPolicy{})
	host := arch.NewSWPE(k, "host", core.PriorityPolicy{})

	dspRec := trace.New("dsp")
	dspRec.Attach(dsp.OS())
	hostRec := trace.New("host")
	hostRec.Attach(host.OS())

	toDSP := arch.NewLink[int](bus, "sensor-dsp", sensor, dsp, 16, 2*sim.Microsecond)
	toHost := arch.NewLink[int](bus, "dsp-host", dsp, host, 8, 2*sim.Microsecond)

	// Sensor: one sample every 500 µs.
	k.Spawn("sensor.sample", func(p *sim.Proc) {
		for i := 0; i < *samples; i++ {
			p.WaitFor(500 * sim.Microsecond)
			toDSP.Send(p, i*i)
		}
	})

	// DSP: high-priority filter task plus background statistics task.
	filter := dsp.OS().TaskCreate("filter", core.Aperiodic, 0, 0, 1)
	stats := dsp.OS().TaskCreate("stats", core.Aperiodic, 0, 0, 5)
	var background int
	k.Spawn("dsp.filter", func(p *sim.Proc) {
		dsp.OS().TaskActivate(p, filter)
		for i := 0; i < *samples; i++ {
			v := toDSP.Recv(p)
			dsp.OS().TimeWait(p, 150*sim.Microsecond) // FIR compute
			toHost.Send(p, v/2)
		}
		dsp.OS().TaskKill(p, stats) // stop the background task
		dsp.OS().TaskTerminate(p)
	})
	k.Spawn("dsp.stats", func(p *sim.Proc) {
		dsp.OS().TaskActivate(p, stats)
		for {
			dsp.OS().TimeWait(p, 100*sim.Microsecond)
			background++
		}
	})

	// Host: logger task.
	logger := host.OS().TaskCreate("logger", core.Aperiodic, 0, 0, 1)
	k.Spawn("host.logger", func(p *sim.Proc) {
		host.OS().TaskActivate(p, logger)
		for i := 0; i < *samples; i++ {
			v := toHost.Recv(p)
			host.OS().TimeWait(p, 50*sim.Microsecond)
			fmt.Printf("[%10v] host: logged sample %2d = %d\n", p.Now(), i, v)
		}
		host.OS().TaskTerminate(p)
	})

	dsp.OS().Start(nil)
	host.OS().Start(nil)
	if err := k.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "simulation error:", err)
		os.Exit(1)
	}

	fmt.Printf("\nfinished at %v\n", k.Now())
	fmt.Printf("bus: %d transfers, %d bytes, busy %v\n", bus.Transfers(), bus.Bytes(), bus.BusyTime())
	d := dsp.OS().StatsSnapshot()
	h := host.OS().StatsSnapshot()
	fmt.Printf("dsp : %d dispatches, %d context switches, %d IRQs; background steps: %d\n",
		d.Dispatches, d.ContextSwitches, d.IRQs, background)
	fmt.Printf("host: %d dispatches, %d context switches, %d IRQs\n",
		h.Dispatches, h.ContextSwitches, h.IRQs)
	fmt.Println("\ndsp schedule:")
	dspRec.Gantt(os.Stdout, trace.GanttOptions{Width: 64})
}
