// Pathfinder: priority inversion and priority inheritance on the RTOS
// model — the famous Mars Pathfinder failure scenario, reproduced at the
// abstraction level of the paper's architecture models.
//
// Three tasks share one processing element:
//
//	bus_mgmt (high priority)   periodically needs the information bus mutex
//	comms    (medium priority) long-running communications bursts
//	meteo    (low priority)    occasionally publishes data, holding the mutex
//
// Without priority inheritance, comms preempts meteo inside its critical
// section, so bus_mgmt's wait for the mutex is extended by the whole
// comms burst — the watchdog fires (a deadline miss). With inheritance,
// meteo is boosted while bus_mgmt waits and the inversion is bounded by
// the critical section. This extends the paper's RTOS model with a
// resource-management service and shows the kind of dynamic-behavior bug
// the model lets a designer find before implementation.
//
// Run with: go run ./examples/pathfinder
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// scenario runs the system and returns the worst observed bus-acquisition
// latency of the high-priority task and the deadline misses.
func scenario(inherit bool) (worst sim.Time, misses int, rec *trace.Recorder) {
	k := sim.NewKernel()
	rtos := core.New(k, "RAD6000", core.PriorityPolicy{},
		core.WithTimeModel(core.TimeModelSegmented))
	rec = trace.New("pathfinder")
	rec.Attach(rtos)
	busMutex := rtos.MutexNew("info-bus", inherit)

	const (
		period   = 125 * sim.Millisecond // bus management cycle
		deadline = 50 * sim.Millisecond  // watchdog limit for acquiring the bus
		gather   = 110 * sim.Millisecond // meteo's data gathering before publishing
		csMeteo  = 30 * sim.Millisecond  // meteo's critical section (holds 110..140)
		burst    = 60 * sim.Millisecond  // comms burst length
		cycles   = 8
	)

	busMgmt := rtos.TaskCreate("bus_mgmt", core.Periodic, period, 5*sim.Millisecond, 10)
	comms := rtos.TaskCreate("comms", core.Aperiodic, 0, 0, 20)
	meteo := rtos.TaskCreate("meteo", core.Aperiodic, 0, 0, 30)

	k.Spawn("bus_mgmt", func(p *sim.Proc) {
		rtos.TaskActivate(p, busMgmt)
		for i := 0; i < cycles; i++ {
			start := p.Now()
			busMutex.Lock(p)
			lat := p.Now() - start
			if lat > worst {
				worst = lat
			}
			if lat > deadline {
				misses++
			}
			rtos.TimeWait(p, 5*sim.Millisecond)
			busMutex.Unlock(p)
			rtos.TaskEndCycle(p)
		}
		rtos.TaskTerminate(p)
	})
	k.Spawn("meteo", func(p *sim.Proc) {
		rtos.TaskActivate(p, meteo)
		for i := 0; i < cycles; i++ {
			rtos.TimeWait(p, gather) // gather data
			busMutex.Lock(p)
			rtos.TimeWait(p, csMeteo) // publish on the bus
			busMutex.Unlock(p)
		}
		rtos.TaskTerminate(p)
	})
	// comms is a server-style task: it bursts whenever the ground station
	// activates it and sleeps in between, forever. Its process is a
	// daemon so the simulation ends when the real work is done.
	k.Spawn("comms", func(p *sim.Proc) {
		rtos.TaskActivate(p, comms)
		for {
			rtos.TimeWait(p, burst) // long communications burst
			rtos.TaskSleep(p)
		}
	}).SetDaemon(true)
	// Ground station: wakes comms 1 ms after each bus-management release —
	// exactly while bus_mgmt blocks on the mutex meteo holds, opening the
	// inversion window.
	k.Spawn("ground", func(p *sim.Proc) {
		p.WaitFor(period + 1*sim.Millisecond)
		for i := 0; i < cycles; i++ {
			if comms.State() == core.TaskSuspended {
				rtos.TaskActivate(p, comms)
			}
			p.WaitFor(period)
		}
	}).SetDaemon(true)

	rtos.Start(nil)
	if err := k.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "simulation error:", err)
		os.Exit(1)
	}
	return worst, misses, rec
}

func main() {
	worstOff, missesOff, _ := scenario(false)
	worstOn, missesOn, _ := scenario(true)

	fmt.Println("Mars-Pathfinder-style priority inversion on the abstract RTOS model")
	fmt.Printf("\n%-28s %18s %18s\n", "", "no inheritance", "inheritance")
	fmt.Printf("%-28s %18v %18v\n", "worst bus-acquire latency", worstOff, worstOn)
	fmt.Printf("%-28s %18d %18d\n", "watchdog resets (>50ms)", missesOff, missesOn)
	fmt.Println("\nWith inheritance the meteo task is boosted while bus_mgmt waits, so the")
	fmt.Println("comms burst can no longer extend the high-priority task's blocking time —")
	fmt.Println("the fix JPL uplinked to Pathfinder, validated here on a system-level model.")
}
