// Steady-state allocation gates for the simulation hot path. The kernel
// pools processes and timer entries and reuses event/ready slices, so once
// a run is warmed up, context switches and timer churn must not allocate
// at all (with no telemetry observer attached — the observer path
// legitimately builds event values). Each test keeps one kernel alive with
// forever-looping processes and measures testing.AllocsPerRun over
// RunUntil slices, so only steady-state work is counted: a single new
// allocation per slice fails the build.
package repro

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/sim"
)

// measureSteadyState warms the simulation up (pool population, goroutine
// stack growth, slice capacity growth) and then asserts that advancing the
// horizon by `slice` allocates nothing.
func measureSteadyState(t *testing.T, k *sim.Kernel, slice sim.Time, what string) {
	t.Helper()
	horizon := sim.Time(0)
	step := func() {
		horizon += slice
		if err := k.RunUntil(horizon); err != nil {
			t.Fatal(err)
		}
	}
	step() // warm-up slice (AllocsPerRun adds one more internally)
	if avg := testing.AllocsPerRun(20, step); avg != 0 {
		t.Errorf("%s: %.1f allocs per %v slice, want 0", what, avg, slice)
	}
}

// TestAllocsContextSwitch pins zero allocations per RTOS context-switch
// round trip: two tasks ping-ponging through a semaphore pair (the
// BenchmarkKernelContextSwitch shape), ~1000 dispatch round trips per
// measured slice.
func TestAllocsContextSwitch(t *testing.T) {
	k := sim.NewKernel()
	defer k.Shutdown()
	rtos := core.New(k, "PE", core.PriorityPolicy{})
	f := channel.RTOSFactory{OS: rtos}
	ping := channel.NewSemaphore(f, "ping", 0)
	pong := channel.NewSemaphore(f, "pong", 0)
	a := rtos.TaskCreate("a", core.Aperiodic, 0, 0, 1)
	b := rtos.TaskCreate("b", core.Aperiodic, 0, 0, 2)
	k.Spawn("a", func(p *sim.Proc) {
		rtos.TaskActivate(p, a)
		for {
			rtos.TimeWait(p, 1)
			ping.Release(p)
			pong.Acquire(p)
		}
	})
	k.Spawn("b", func(p *sim.Proc) {
		rtos.TaskActivate(p, b)
		for {
			ping.Acquire(p)
			pong.Release(p)
		}
	})
	rtos.Start(nil)
	measureSteadyState(t, k, 1000, "context switch")
}

// TestAllocsTimerScheduleCancel pins zero allocations per timer
// schedule+cancel pair: a waiter blocks in WaitTimeout (scheduling a
// timeout timer) and is notified before expiry (cancelling it) — the
// cancel-heavy pattern of fault campaigns. Timer entries must come from
// the kernel's free list, and the periodic heap compaction must stay
// in-place.
func TestAllocsTimerScheduleCancel(t *testing.T) {
	k := sim.NewKernel()
	defer k.Shutdown()
	ev := k.NewEvent("ev")
	k.Spawn("waiter", func(p *sim.Proc) {
		for {
			if !p.WaitTimeout(ev, sim.Second) {
				t.Error("timeout fired; expected notification")
				return
			}
		}
	})
	k.Spawn("notifier", func(p *sim.Proc) {
		for {
			p.Notify(ev)
			p.WaitFor(1)
		}
	})
	measureSteadyState(t, k, 1000, "timer schedule/cancel")
}

// TestAllocsWaitFor pins zero allocations per bare-kernel WaitFor step
// (timer schedule + fire, no RTOS layer at all).
func TestAllocsWaitFor(t *testing.T) {
	k := sim.NewKernel()
	defer k.Shutdown()
	k.Spawn("p", func(p *sim.Proc) {
		for {
			p.WaitFor(10)
		}
	})
	measureSteadyState(t, k, 10_000, "WaitFor")
}
