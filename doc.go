// Package repro reproduces Gerstlauer, Yu and Gajski, "RTOS Modeling for
// System Level Design" (DATE 2003): an abstract RTOS model layered on a
// system-level design language's simulation kernel, the refinement flow
// from unscheduled specification models to RTOS-based architecture
// models, and the paper's evaluation (the GSM vocoder of Table 1 and the
// simulation traces of Figure 8).
//
// The root package carries the repository's benchmark suite; the library
// lives under internal/ (see README.md for the architecture overview and
// DESIGN.md for the per-experiment index):
//
//	internal/sim      discrete-event SLDL simulation kernel (substrate)
//	internal/core     the RTOS model — the paper's contribution
//	internal/channel  communication library (spec- and RTOS-level)
//	internal/refine   specification model & dynamic-scheduling refinement
//	internal/arch     PEs, buses, interrupts, inter-PE links
//	internal/trace    trace recording, analysis and rendering
//	internal/iss      toy DSP instruction-set simulator
//	internal/ukernel  micro-RTOS for the implementation model
//	internal/vocoder  the Table 1 application in all three models
//	internal/models   the Figure 3 example
//	internal/workload task-set generation for scheduling experiments
package repro
