// Robustness pin: the runtime diagnosis layer (wait-for-graph deadlock
// detector, stall/starvation watchdog) must stay silent on every healthy
// model in the repository, and must fire — with the exact wait-for cycle
// — on the seeded fault. scripts/check.sh runs this file under -race, so
// it doubles as the race gate for the diagnosis plumbing.
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/models"
	"repro/internal/simcheck"
	"repro/internal/vocoder"
)

// TestExamplesDiagnosisClean runs the paper's example models with the
// always-armed monitor and asserts no runtime diagnosis surfaces as an
// error. The example runners now propagate OS().Diagnosis() into their
// returned error, so a clean err is the whole assertion.
func TestExamplesDiagnosisClean(t *testing.T) {
	par := vocoder.Small()
	for _, tm := range []core.TimeModel{core.TimeModelCoarse, core.TimeModelSegmented} {
		if _, _, err := vocoder.RunArch(par, core.PriorityPolicy{}, tm); err != nil {
			t.Errorf("vocoder arch (%v): %v", tm, err)
		}
	}
	if _, _, err := vocoder.RunMultiPE(vocoder.DefaultMultiPE(), core.PriorityPolicy{}, core.TimeModelCoarse); err != nil {
		t.Errorf("vocoder multi-pe: %v", err)
	}
	for _, tm := range []core.TimeModel{core.TimeModelCoarse, core.TimeModelSegmented} {
		if _, _, err := models.Figure3Architecture(models.DefaultFigure3(), core.PriorityPolicy{}, tm); err != nil {
			t.Errorf("figure3 arch (%v): %v", tm, err)
		}
	}
}

// TestSimcheckMatrixDiagnosisClean spot-checks generated scenarios across
// the full policy × time-model × PE matrix with the watchdog enabled: the
// generator only emits deadlock-free scenarios, so any diagnosis is a
// detector false positive and CheckRun reports it as a violation.
func TestSimcheckMatrixDiagnosisClean(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		s := simcheck.Generate(seed)
		if fails := simcheck.Check(s); len(fails) > 0 {
			for _, f := range fails {
				t.Errorf("seed %d: %v", seed, f)
			}
		}
	}
}

// TestSeededDeadlockPin is the must-detect gate: the three-task semaphore
// ring with its refill interrupts dropped must be diagnosed as a deadlock
// with the exact wait-for cycle, within the scenario's own horizon.
func TestSeededDeadlockPin(t *testing.T) {
	s, plan := fault.DeadlockScenario()
	res := fault.RunScenario(s, plan, s.Seed, fault.Options{})
	d := res.Diagnosed()
	if d == nil {
		t.Fatal("seeded deadlock not detected")
	}
	if d.Kind != core.DiagDeadlock {
		t.Fatalf("diagnosis kind = %v, want deadlock (%v)", d.Kind, d)
	}
	if d.At >= s.Horizon() {
		t.Errorf("detected at %v, after the scenario horizon %v", d.At, s.Horizon())
	}
	want := []string{
		"A waits on semaphore:s1 held by B",
		"B waits on semaphore:s2 held by C",
		"C waits on semaphore:s0 held by A",
	}
	if len(d.Cycle) != len(want) {
		t.Fatalf("cycle = %v, want %v", d.Cycle, want)
	}
	for i := range want {
		if got := d.Cycle[i].String(); got != want[i] {
			t.Errorf("cycle[%d] = %q, want %q", i, got, want[i])
		}
	}
}
