// Robustness pin: the runtime diagnosis layer (wait-for-graph deadlock
// detector, stall/starvation watchdog) must stay silent on every healthy
// model in the repository, and must fire — with the exact wait-for cycle
// — on the seeded fault. scripts/check.sh runs this file under -race, so
// it doubles as the race gate for the diagnosis plumbing.
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/models"
	"repro/internal/personality/osek"
	"repro/internal/sim"
	"repro/internal/simcheck"
	"repro/internal/vocoder"
)

// TestExamplesDiagnosisClean runs the paper's example models with the
// always-armed monitor and asserts no runtime diagnosis surfaces as an
// error. The example runners now propagate OS().Diagnosis() into their
// returned error, so a clean err is the whole assertion.
func TestExamplesDiagnosisClean(t *testing.T) {
	par := vocoder.Small()
	for _, tm := range []core.TimeModel{core.TimeModelCoarse, core.TimeModelSegmented} {
		if _, _, err := vocoder.RunArch(par, core.PriorityPolicy{}, tm); err != nil {
			t.Errorf("vocoder arch (%v): %v", tm, err)
		}
	}
	if _, _, err := vocoder.RunMultiPE(vocoder.DefaultMultiPE(), core.PriorityPolicy{}, core.TimeModelCoarse); err != nil {
		t.Errorf("vocoder multi-pe: %v", err)
	}
	for _, tm := range []core.TimeModel{core.TimeModelCoarse, core.TimeModelSegmented} {
		if _, _, err := models.Figure3Architecture(models.DefaultFigure3(), core.PriorityPolicy{}, tm); err != nil {
			t.Errorf("figure3 arch (%v): %v", tm, err)
		}
	}
}

// TestSimcheckMatrixDiagnosisClean spot-checks generated scenarios across
// the full policy × time-model × PE matrix with the watchdog enabled: the
// generator only emits deadlock-free scenarios, so any diagnosis is a
// detector false positive and CheckRun reports it as a violation.
func TestSimcheckMatrixDiagnosisClean(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		s := simcheck.Generate(seed)
		if fails := simcheck.Check(s); len(fails) > 0 {
			for _, f := range fails {
				t.Errorf("seed %d: %v", seed, f)
			}
		}
	}
}

// TestSeededDeadlockPin is the must-detect gate: the three-task semaphore
// ring with its refill interrupts dropped must be diagnosed as a deadlock
// with the exact wait-for cycle, within the scenario's own horizon. The
// gate is pinned under both the generic and the itron personalities —
// wai_sem's direct-handoff grant discipline must not change which cycle
// forms or how it is named (µITRON semaphores have no ceiling protocol,
// so the ring wedges exactly like the paper model's).
func TestSeededDeadlockPin(t *testing.T) {
	for _, pers := range []string{"", "itron"} {
		name := pers
		if name == "" {
			name = "generic"
		}
		t.Run(name, func(t *testing.T) {
			s, plan := fault.DeadlockScenario()
			res := fault.RunScenario(s, plan, s.Seed, fault.Options{Personality: pers})
			d := res.Diagnosed()
			if d == nil {
				t.Fatal("seeded deadlock not detected")
			}
			if d.Kind != core.DiagDeadlock {
				t.Fatalf("diagnosis kind = %v, want deadlock (%v)", d.Kind, d)
			}
			if d.At >= s.Horizon() {
				t.Errorf("detected at %v, after the scenario horizon %v", d.At, s.Horizon())
			}
			want := []string{
				"A waits on semaphore:s1 held by B",
				"B waits on semaphore:s2 held by C",
				"C waits on semaphore:s0 held by A",
			}
			if len(d.Cycle) != len(want) {
				t.Fatalf("cycle = %v, want %v", d.Cycle, want)
			}
			for i := range want {
				if got := d.Cycle[i].String(); got != want[i] {
					t.Errorf("cycle[%d] = %q, want %q", i, got, want[i])
				}
			}
		})
	}
}

// TestOSEKCeilingPreventsSemaphoreRing is the counterpart of the
// must-detect gate: the same three-task hold-one-want-next ring that
// wedges under generic and itron semaphores CANNOT form under OSEK
// resources, because the immediate priority ceiling protocol raises a
// task to the shared ceiling the moment it takes its first resource —
// no other accessor can even start its own critical section, so nesting
// order is irrelevant and the run must stay diagnosis-free with every
// task completing both critical sections.
func TestOSEKCeilingPreventsSemaphoreRing(t *testing.T) {
	k := sim.NewKernel()
	defer k.Shutdown()
	rtos := core.New(k, "ECU", core.PriorityPolicy{})
	rtos.Init()
	sys := osek.NewSystem(rtos, osek.BCC1)

	var ids [3]osek.TaskID
	var done int
	for i, name := range []string{"A", "B", "C"} {
		id, st := sys.DeclareTask(osek.TaskDecl{Name: name, Prio: 3 + i, Autostart: true}, nil)
		if st != osek.EOk {
			t.Fatalf("DeclareTask(%s): %v", name, st)
		}
		ids[i] = id
	}
	// Ring resources: task i holds r[i] and requests r[(i+1)%3] inside it.
	var rs [3]osek.ResID
	for i, name := range []string{"r0", "r1", "r2"} {
		id, st := sys.DeclareResource(name, ids[i], ids[(i+2)%3])
		if st != osek.EOk {
			t.Fatalf("DeclareResource(%s): %v", name, st)
		}
		rs[i] = id
	}
	for i := range ids {
		i := i
		sys.SetBody(ids[i], func(p *sim.Proc) {
			if st := sys.GetResource(p, rs[i]); st != osek.EOk {
				t.Errorf("task %d GetResource(hold): %v", i, st)
			}
			rtos.TimeWait(p, 10)
			if st := sys.GetResource(p, rs[(i+1)%3]); st != osek.EOk {
				t.Errorf("task %d GetResource(want): %v", i, st)
			}
			rtos.TimeWait(p, 5)
			sys.ReleaseResource(p, rs[(i+1)%3])
			sys.ReleaseResource(p, rs[i])
			done++
		})
	}
	sys.Start()
	if err := k.RunUntil(10_000); err != nil {
		t.Fatalf("ring under ceiling protocol did not stay live: %v", err)
	}
	if d := rtos.Diagnosis(); d != nil {
		t.Fatalf("diagnosis on a ceiling-protected ring: %v", d)
	}
	if d := rtos.DiagnoseNow(); d != nil {
		t.Fatalf("post-mortem diagnosis on a ceiling-protected ring: %v", d)
	}
	if done != 3 {
		t.Errorf("%d tasks completed both critical sections, want 3", done)
	}
}
